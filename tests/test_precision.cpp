// Mixed-precision (bf16/fp16 storage, fp32 compute) test suite — the
// contracts DESIGN.md §10 states:
//
//   1. Conversion layer: widen is exact over every representable bit
//      pattern, narrow is round-to-nearest-even (normals, subnormals,
//      overflow-to-inf), NaNs quiet but never turn finite.
//   2. Convert-on-pack bit-identity: for every executable ISA, the fused
//      widening packers produce panels bit-identical to converting each
//      element to fp32 first and running the fp32 scalar packer — and the
//      resident raw-pack + widen-on-hit pair reproduces the cold pack
//      bit-for-bit.
//   3. Tolerance contract: FT verification thresholds (derived in the fp32
//      accumulator type) hold with narrow storage — clean runs report
//      clean and match the fp32 oracle on the widened operands, across
//      fast/general paths, sync/engine/resident/service routing, and
//      injected faults are corrected or flagged at parity with fp32.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <type_traits>
#include <vector>

#include "arch/cpu_features.hpp"
#include "core/context.hpp"
#include "core/gemm.hpp"
#include "core/gemm_batched.hpp"
#include "inject/injectors.hpp"
#include "serve/service.hpp"
#include "test_common.hpp"

namespace ftgemm {
namespace {

using testing::expect_matrix_near;
using testing::GemmCase;
using testing::gemm_tolerance;
using testing::seed_note;
using testing::test_seed;

std::vector<Isa> executable_isas() {
  std::vector<Isa> v{Isa::kScalar};
  if (cpu_features().has_avx2_kernel_support()) v.push_back(Isa::kAvx2);
  if (cpu_features().has_avx512_kernel_support()) v.push_back(Isa::kAvx512);
  return v;
}

// ---------------------------------------------------------------------------
// 1. Conversion layer.
// ---------------------------------------------------------------------------

TEST(Bf16Convert, AllBitPatternsRoundTripThroughFloat) {
  for (std::uint32_t b = 0; b <= 0xffffu; ++b) {
    const bf16_t h = bf16_t::from_bits(std::uint16_t(b));
    const float f = float(h);
    const bf16_t back(f);
    if (std::isnan(f)) {
      // NaN payloads may be quieted, but NaN-ness and sign must survive.
      EXPECT_TRUE(std::isnan(float(back))) << "bits=" << b;
      EXPECT_EQ(back.bits & 0x8000u, b & 0x8000u) << "bits=" << b;
    } else {
      // bf16 is a strict subset of f32: widen is exact, so narrowing the
      // widened value must reproduce the bits — including ±0, ±inf, and
      // every subnormal.
      EXPECT_EQ(back.bits, std::uint16_t(b)) << "bits=" << b;
    }
  }
}

TEST(F16Convert, AllBitPatternsRoundTripThroughFloat) {
  for (std::uint32_t b = 0; b <= 0xffffu; ++b) {
    const fp16_t h = fp16_t::from_bits(std::uint16_t(b));
    const float f = float(h);
    const fp16_t back(f);
    if (std::isnan(f)) {
      EXPECT_TRUE(std::isnan(float(back))) << "bits=" << b;
      EXPECT_EQ(back.bits & 0x8000u, b & 0x8000u) << "bits=" << b;
    } else {
      EXPECT_EQ(back.bits, std::uint16_t(b)) << "bits=" << b;
    }
  }
}

TEST(Bf16Convert, NarrowingRoundsToNearestEven) {
  // 1.0 = 0x3f80; one bf16 ulp at that scale is 2^-7.  Exactly-halfway
  // values must round to the even mantissa, everything else to nearest.
  const float ulp = std::ldexp(1.0f, -7);
  EXPECT_EQ(bf16_t(1.0f).bits, 0x3f80u);
  EXPECT_EQ(bf16_t(1.0f + 0.5f * ulp).bits, 0x3f80u);   // halfway -> even
  EXPECT_EQ(bf16_t(1.0f + 1.5f * ulp).bits, 0x3f82u);   // halfway -> even
  EXPECT_EQ(bf16_t(1.0f + 0.51f * ulp).bits, 0x3f81u);  // above half -> up
  EXPECT_EQ(bf16_t(1.0f + 0.49f * ulp).bits, 0x3f80u);  // below half -> down
  EXPECT_EQ(bf16_t(-(1.0f + 0.5f * ulp)).bits, 0xbf80u);
}

TEST(F16Convert, NarrowingRoundsToNearestEven) {
  // 1.0 = 0x3c00; one fp16 ulp at that scale is 2^-10.
  const float ulp = std::ldexp(1.0f, -10);
  EXPECT_EQ(fp16_t(1.0f).bits, 0x3c00u);
  EXPECT_EQ(fp16_t(1.0f + 0.5f * ulp).bits, 0x3c00u);
  EXPECT_EQ(fp16_t(1.0f + 1.5f * ulp).bits, 0x3c02u);
  EXPECT_EQ(fp16_t(1.0f + 0.51f * ulp).bits, 0x3c01u);
  EXPECT_EQ(fp16_t(-(1.0f + 0.5f * ulp)).bits, 0xbc00u);
}

TEST(F16Convert, SubnormalsAndOverflow) {
  // Smallest fp16 subnormal is 2^-24; halves below 2^-25 round to zero.
  EXPECT_EQ(fp16_t(std::ldexp(1.0f, -24)).bits, 0x0001u);
  EXPECT_EQ(fp16_t(std::ldexp(1.5f, -24)).bits, 0x0002u);  // halfway -> even
  EXPECT_EQ(fp16_t(std::ldexp(1.0f, -25)).bits, 0x0000u);  // halfway -> even
  EXPECT_EQ(fp16_t(std::ldexp(1.0f, -26)).bits, 0x0000u);
  EXPECT_EQ(fp16_t(-std::ldexp(1.0f, -24)).bits, 0x8001u);
  // Subnormal widening is exact and normalizes.
  EXPECT_EQ(float(fp16_t::from_bits(0x0001u)), std::ldexp(1.0f, -24));
  EXPECT_EQ(float(fp16_t::from_bits(0x03ffu)),
            1023.0f * std::ldexp(1.0f, -24));
  // Largest normal is 65504; the halfway point to the (absent) next value
  // rounds up to inf, as does any larger magnitude.
  EXPECT_EQ(fp16_t(65504.0f).bits, 0x7bffu);
  EXPECT_EQ(fp16_t(65520.0f).bits, 0x7c00u);
  EXPECT_EQ(fp16_t(1e30f).bits, 0x7c00u);
  EXPECT_EQ(fp16_t(-1e30f).bits, 0xfc00u);
}

TEST(HalfConvert, InfAndNanSemantics) {
  const float inf = std::numeric_limits<float>::infinity();
  const float qnan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(bf16_t(inf).bits, 0x7f80u);
  EXPECT_EQ(bf16_t(-inf).bits, 0xff80u);
  EXPECT_EQ(float(bf16_t::from_bits(0x7f80u)), inf);
  EXPECT_TRUE(std::isnan(float(bf16_t(qnan))));
  EXPECT_EQ(fp16_t(inf).bits, 0x7c00u);
  EXPECT_EQ(float(fp16_t::from_bits(0xfc00u)), -inf);
  EXPECT_TRUE(std::isnan(float(fp16_t(qnan))));
  // Signaling-NaN inputs widen to NaN (quieted), never to a finite value.
  EXPECT_TRUE(std::isnan(float(fp16_t::from_bits(0x7c01u))));
  EXPECT_TRUE(std::isnan(float(bf16_t::from_bits(0x7f81u))));
}

// ---------------------------------------------------------------------------
// 2. Convert-on-pack bit-identity across ISAs.
// ---------------------------------------------------------------------------

/// Widen a narrow matrix elementwise into fp32 (the "convert first"
/// reference path).
template <typename S>
Matrix<float> widened(const Matrix<S>& src) {
  Matrix<float> out(src.rows(), src.cols(), src.ld());
  for (index_t j = 0; j < src.cols(); ++j)
    for (index_t i = 0; i < src.ld(); ++i) out(i, j) = float(src(i, j));
  return out;
}

template <typename S>
void convert_on_pack_sweep(Isa isa) {
  const PackSet<S, float> mixed = get_pack_set<S, float>(isa);
  const PackSet<float> f32 = get_pack_set<float>(Isa::kScalar);
  ASSERT_NE(mixed.pack_a, nullptr);
  ASSERT_NE(mixed.pack_a_ft, nullptr);
  ASSERT_NE(mixed.pack_b, nullptr);
  ASSERT_NE(mixed.pack_b_ft, nullptr);
  ASSERT_NE(mixed.pack_a_raw, nullptr);
  ASSERT_NE(mixed.widen_a, nullptr);
  EXPECT_EQ(mixed.isa, isa);

  const KernelSet<S, float> ks = get_kernel_set<S, float>(isa);
  const index_t mr = ks.mr, nr = ks.nr;
  Matrix<S> src(150, 150);
  src.fill_random(53);
  const Matrix<float> wide = widened(src);

  for (const bool trans : {false, true}) {
    const OperandView<S> view{src.data(), src.ld(), trans};
    const OperandView<float> wview{wide.data(), wide.ld(), trans};
    for (const index_t klen : {index_t(1), index_t(7), index_t(64)}) {
      for (const index_t mlen :
           {index_t(1), mr - 1, mr, mr + 1, 3 * mr - 2}) {
        SCOPED_TRACE("isa=" + std::string(isa_name(isa)) +
                     " trans=" + std::to_string(trans) +
                     " mlen=" + std::to_string(mlen) +
                     " klen=" + std::to_string(klen));
        const float alpha = -1.25f;
        const index_t panels = (mlen + mr - 1) / mr;
        const std::size_t dn = std::size_t(panels * mr * klen);
        std::vector<float> want(dn, -77.0f), got(dn, -55.0f);
        // Reference: convert-then-scalar-pack in fp32.
        f32.pack_a(wview, 2, 1, mlen, klen, mr, alpha, want.data());
        // Under test: fused convert-on-pack.
        mixed.pack_a(view, 2, 1, mlen, klen, mr, alpha, got.data());
        EXPECT_EQ(want, got) << "pack_a must be bit-identical";

        std::vector<float> bc(static_cast<std::size_t>(klen));
        for (index_t kk = 0; kk < klen; ++kk)
          bc[std::size_t(kk)] = 0.1f * float(kk + 1);
        std::vector<float> cc_want(std::size_t(mlen), 1.0f),
            cc_got(std::size_t(mlen), 1.0f);
        f32.pack_a_ft(wview, 2, 1, mlen, klen, mr, alpha, want.data(),
                      bc.data(), cc_want.data());
        mixed.pack_a_ft(view, 2, 1, mlen, klen, mr, alpha, got.data(),
                        bc.data(), cc_got.data());
        EXPECT_EQ(want, got) << "pack_a_ft panel must be bit-identical";
        for (std::size_t i = 0; i < cc_want.size(); ++i) {
          EXPECT_NEAR(cc_got[i], cc_want[i],
                      1e-3 * std::max(1.0, std::abs(double(cc_want[i]))))
              << "cc[" << i << "]";
        }

        // Resident pair: raw permuted storage bits, widened+scaled on hit,
        // must reproduce the cold convert-on-pack panel bit-for-bit
        // (including explicit zero padding rows under negative alpha).
        std::vector<S> raw(dn);
        std::vector<float> widened_panel(dn, -33.0f);
        mixed.pack_a_raw(view, 2, 1, mlen, klen, mr, raw.data());
        mixed.widen_a(raw.data(), mlen, klen, mr, alpha,
                      widened_panel.data());
        EXPECT_EQ(want, widened_panel)
            << "pack_a_raw + widen_a must equal the cold pack";
      }
      for (const index_t nlen :
           {index_t(1), nr - 1, nr, nr + 1, 4 * nr - 3}) {
        SCOPED_TRACE("isa=" + std::string(isa_name(isa)) +
                     " trans=" + std::to_string(trans) +
                     " nlen=" + std::to_string(nlen) +
                     " klen=" + std::to_string(klen));
        const index_t panels = (nlen + nr - 1) / nr;
        const std::size_t dn = std::size_t(panels * nr * klen);
        std::vector<float> want(dn, -77.0f), got(dn, -55.0f);
        f32.pack_b(wview, 1, 2, klen, nlen, nr, want.data());
        mixed.pack_b(view, 1, 2, klen, nlen, nr, got.data());
        EXPECT_EQ(want, got) << "pack_b must be bit-identical";

        std::vector<float> ar(static_cast<std::size_t>(klen));
        for (index_t kk = 0; kk < klen; ++kk)
          ar[std::size_t(kk)] = 0.01f * float(kk) - 0.3f;
        std::vector<float> cr_want(std::size_t(nlen), 2.0f),
            cr_got(std::size_t(nlen), 2.0f);
        f32.pack_b_ft(wview, 1, 2, klen, nlen, nr, want.data(), ar.data(),
                      cr_want.data());
        mixed.pack_b_ft(view, 1, 2, klen, nlen, nr, got.data(), ar.data(),
                        cr_got.data());
        EXPECT_EQ(want, got) << "pack_b_ft panel must be bit-identical";
        for (std::size_t j = 0; j < cr_want.size(); ++j) {
          EXPECT_NEAR(cr_got[j], cr_want[j],
                      1e-3 * std::max(1.0, std::abs(double(cr_want[j]))))
              << "cr[" << j << "]";
        }
      }
    }
  }
}

TEST(MixedPackDispatch, Bf16ConvertOnPackMatchesConvertThenPack) {
  for (const Isa isa : executable_isas()) convert_on_pack_sweep<bf16_t>(isa);
}

TEST(MixedPackDispatch, F16ConvertOnPackMatchesConvertThenPack) {
  for (const Isa isa : executable_isas()) convert_on_pack_sweep<fp16_t>(isa);
}

TEST(MixedPackDispatch, KernelSetReusesComputeTypeMicroKernels) {
  for (const Isa isa : executable_isas()) {
    const KernelSet<bf16_t, float> mixed = get_kernel_set<bf16_t, float>(isa);
    const KernelSet<float> f32 = get_kernel_set<float>(isa);
    // Narrow storage never reaches a multiplier: the micro-kernels, register
    // tile, and FT epilogue lanes are the fp32 ones.
    EXPECT_EQ(mixed.base, f32.base);
    EXPECT_EQ(mixed.ft, f32.ft);
    EXPECT_EQ(mixed.mr, f32.mr);
    EXPECT_EQ(mixed.nr, f32.nr);
    EXPECT_EQ(mixed.cr_lanes, f32.cr_lanes);
    // ...and the checksum reductions over fp32 panels are shared too.
    EXPECT_EQ(mixed.pack.reduce_bc, f32.pack.reduce_bc);
    EXPECT_EQ(mixed.pack.scale_encode_c, f32.pack.scale_encode_c);
    EXPECT_EQ(mixed.pack.encode_cc, f32.pack.encode_cc);
  }
}

// ---------------------------------------------------------------------------
// 3. End-to-end mixed FT-GEMM: tolerance contract, routing bit-identity,
//    and fault-injection parity.
// ---------------------------------------------------------------------------

/// Mixed-precision problem: narrow A/B, fp32 C.
template <typename S>
struct MixedProblem {
  Matrix<S> a, b;
  Matrix<float> c;

  explicit MixedProblem(const GemmCase& cs, std::uint64_t seed = 7) {
    const auto [am, an] = testing::a_dims(cs);
    const auto [bm, bn] = testing::b_dims(cs);
    a = Matrix<S>(am, an);
    b = Matrix<S>(bm, bn);
    c = Matrix<float>(cs.m, cs.n);
    a.fill_random(seed);
    b.fill_random(seed + 1);
    c.fill_random(seed + 2);
  }

  /// fp32 oracle on the *quantized* operands: the narrow values are exact
  /// fp32 numbers, so the only difference vs the library is accumulation
  /// order — gemm_tolerance<float>(k) is the right budget.
  [[nodiscard]] Matrix<float> reference(const GemmCase& cs) const {
    Matrix<float> ref = c.clone();
    const Matrix<float> wa = widened(a), wb = widened(b);
    testing::naive_ref_gemm<float>(cs.ta, cs.tb, cs.m, cs.n, cs.k,
                                   float(cs.alpha), wa.data(), wa.ld(),
                                   wb.data(), wb.ld(), float(cs.beta),
                                   ref.data(), ref.ld());
    return ref;
  }
};

template <typename S>
FtReport run_mixed_ft(const GemmCase& cs, const MixedProblem<S>& p,
                      Matrix<float>& c, const Options& opts = {}) {
  if constexpr (std::is_same_v<S, bf16_t>) {
    return ft_gemm_bf16(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k,
                        float(cs.alpha), p.a.data(), p.a.ld(), p.b.data(),
                        p.b.ld(), float(cs.beta), c.data(), c.ld(), opts);
  } else {
    return ft_gemm_f16(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k,
                       float(cs.alpha), p.a.data(), p.a.ld(), p.b.data(),
                       p.b.ld(), float(cs.beta), c.data(), c.ld(), opts);
  }
}

template <typename S>
void run_mixed_ori(const GemmCase& cs, const MixedProblem<S>& p,
                   Matrix<float>& c, const Options& opts = {}) {
  if constexpr (std::is_same_v<S, bf16_t>) {
    gemm_bf16(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k,
              float(cs.alpha), p.a.data(), p.a.ld(), p.b.data(), p.b.ld(),
              float(cs.beta), c.data(), c.ld(), opts);
  } else {
    gemm_f16(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k,
             float(cs.alpha), p.a.data(), p.a.ld(), p.b.data(), p.b.ld(),
             float(cs.beta), c.data(), c.ld(), opts);
  }
}

std::vector<GemmCase> mixed_cases() {
  std::vector<GemmCase> cases;
  for (Trans ta : {Trans::kNoTrans, Trans::kTrans}) {
    for (Trans tb : {Trans::kNoTrans, Trans::kTrans}) {
      cases.push_back({20, 24, 16, ta, tb, 1.25, 0.5});
    }
  }
  cases.push_back({60, 48, 300, Trans::kNoTrans, Trans::kNoTrans, -0.5, 1.0});
  cases.push_back({97, 65, 130, Trans::kTrans, Trans::kNoTrans, 1.0, 0.0});
  cases.push_back({128, 96, 64, Trans::kNoTrans, Trans::kTrans, 2.0, -0.75});
  return cases;
}

/// Tolerance contract: narrow storage, fp32 checksums — clean runs must
/// verify clean (no false detections from the width change) and match the
/// fp32 oracle on the quantized operands within the fp32 rounding budget.
template <typename S>
void tolerance_contract_sweep() {
  const std::uint64_t seed = test_seed(2411);
  std::size_t ci = 0;
  for (const GemmCase& cs : mixed_cases()) {
    const MixedProblem<S> p(cs, seed + ci++);
    const Matrix<float> ref = p.reference(cs);
    for (const Isa isa : executable_isas()) {
      Options opts;
      opts.isa = isa;
      Matrix<float> c = p.c.clone();
      const FtReport rep = run_mixed_ft<S>(cs, p, c, opts);
      EXPECT_TRUE(rep.clean())
          << cs << " isa=" << isa_name(isa) << seed_note(seed);
      EXPECT_EQ(rep.errors_detected, 0)
          << cs << " isa=" << isa_name(isa) << seed_note(seed);
      expect_matrix_near(c, ref, gemm_tolerance<float>(cs.k),
                         cs.name() + "_" + std::string(isa_name(isa)) +
                             seed_note(seed));

      // Ori path agrees with FT bit-for-bit (same packing and kernels).
      Matrix<float> c_ori = p.c.clone();
      run_mixed_ori<S>(cs, p, c_ori, opts);
      expect_matrix_near(c_ori, c, 0.0,
                         cs.name() + "_ori_vs_ft" + seed_note(seed));
    }
  }
}

TEST(MixedToleranceContract, Bf16CleanRunsVerifyCleanAcrossIsas) {
  tolerance_contract_sweep<bf16_t>();
}

TEST(MixedToleranceContract, F16CleanRunsVerifyCleanAcrossIsas) {
  tolerance_contract_sweep<fp16_t>();
}

/// Routing bit-identity: sync, engine, general blocked path, resident
/// cache (miss and hit), and the async service must deliver the same C
/// bit-for-bit.
template <typename S>
void routing_bit_identity() {
  const std::uint64_t seed = test_seed(2412);
  const GemmCase small{24, 16, 20, Trans::kNoTrans, Trans::kTrans, 1.25, 0.5};
  const GemmCase big{80, 48, 330, Trans::kTrans, Trans::kNoTrans, -1.0, 1.0};
  std::size_t ci = 0;
  for (const GemmCase& cs : {small, big}) {
    const MixedProblem<S> p(cs, seed + ci++);

    Matrix<float> c_sync = p.c.clone();
    const FtReport rep = run_mixed_ft<S>(cs, p, c_sync, {});
    EXPECT_TRUE(rep.clean()) << cs << seed_note(seed);

    // Engine route.
    GemmEngine<S, float> engine;
    Matrix<float> c_engine = p.c.clone();
    engine.ft_gemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k,
                   float(cs.alpha), p.a.data(), p.a.ld(), p.b.data(),
                   p.b.ld(), float(cs.beta), c_engine.data(), c_engine.ld());
    expect_matrix_near(c_engine, c_sync, 0.0,
                       cs.name() + "_engine" + seed_note(seed));

    // Resident-A route: encoding miss, then a verified hit, both
    // bit-identical to the cold path (widen-on-hit applies alpha with the
    // same single fp32 rounding the cold pack does).
    Options ropts;
    ropts.resident_a = true;
    Matrix<float> c_miss = p.c.clone();
    const FtReport r_miss = run_mixed_ft<S>(cs, p, c_miss, ropts);
    expect_matrix_near(c_miss, c_sync, 0.0,
                       cs.name() + "_resident_miss" + seed_note(seed));
    EXPECT_FALSE(r_miss.resident_hit) << cs << seed_note(seed);
    Matrix<float> c_hit = p.c.clone();
    const FtReport r_hit = run_mixed_ft<S>(cs, p, c_hit, ropts);
    expect_matrix_near(c_hit, c_sync, 0.0,
                       cs.name() + "_resident_hit" + seed_note(seed));
    EXPECT_TRUE(r_hit.resident_hit) << cs << seed_note(seed);
    EXPECT_EQ(r_hit.resident_heals, 0) << cs << seed_note(seed);

    // Service route (direct or inline; single-member group).
    serve::GemmService service;
    Matrix<float> c_async = p.c.clone();
    serve::GemmRequest req = serve::make_gemm_request<S>(
        /*ft=*/true, Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k,
        float(cs.alpha), p.a.data(), p.a.ld(), p.b.data(), p.b.ld(),
        float(cs.beta), c_async.data(), c_async.ld());
    const serve::GemmResult res = service.submit(req).wait();
    EXPECT_TRUE(res.ok()) << cs << seed_note(seed);
    expect_matrix_near(c_async, c_sync, 0.0,
                       cs.name() + "_service" + seed_note(seed));
    service.shutdown();
  }
}

TEST(MixedRoutingBitIdentity, Bf16SyncEngineResidentService) {
  clear_process_caches();
  routing_bit_identity<bf16_t>();
}

TEST(MixedRoutingBitIdentity, F16SyncEngineResidentService) {
  clear_process_caches();
  routing_bit_identity<fp16_t>();
}

/// Coalesced service route: a window of same-fingerprint bf16 requests must
/// merge into one batched call and still deliver bit-identical results.
TEST(MixedService, CoalescedWindowMatchesSyncBitForBit) {
  const std::uint64_t seed = test_seed(2413);
  const GemmCase cs{24, 16, 20, Trans::kNoTrans, Trans::kNoTrans, 1.0, 0.0};
  constexpr int kWindow = 6;
  std::vector<MixedProblem<bf16_t>> problems;
  problems.reserve(kWindow);
  for (int i = 0; i < kWindow; ++i) problems.emplace_back(cs, seed + i);

  std::vector<Matrix<float>> c_sync, c_async;
  for (int i = 0; i < kWindow; ++i) {
    c_sync.push_back(problems[std::size_t(i)].c.clone());
    c_async.push_back(problems[std::size_t(i)].c.clone());
    const FtReport rep =
        run_mixed_ft<bf16_t>(cs, problems[std::size_t(i)], c_sync.back(), {});
    EXPECT_TRUE(rep.clean()) << seed_note(seed);
  }

  serve::ServiceConfig cfg;
  cfg.shards = 1;
  serve::GemmService service(cfg);
  std::vector<serve::GemmRequest> reqs;
  for (int i = 0; i < kWindow; ++i) {
    const MixedProblem<bf16_t>& p = problems[std::size_t(i)];
    reqs.push_back(serve::make_gemm_request<bf16_t>(
        /*ft=*/true, Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k,
        float(cs.alpha), p.a.data(), p.a.ld(), p.b.data(), p.b.ld(),
        float(cs.beta), c_async[std::size_t(i)].data(),
        c_async[std::size_t(i)].ld()));
  }
  std::vector<serve::GemmFuture> futures = service.submit_all(reqs);
  for (int i = 0; i < kWindow; ++i) {
    const serve::GemmResult res = futures[std::size_t(i)].wait();
    EXPECT_TRUE(res.ok()) << "member " << i << seed_note(seed);
    expect_matrix_near(c_async[std::size_t(i)], c_sync[std::size_t(i)], 0.0,
                       "member " + std::to_string(i) + seed_note(seed));
  }
  service.shutdown();
}

/// Mixed requests never coalesce with fp32 requests of the same shape —
/// the batched call would reinterpret the operand bytes.
TEST(MixedService, Bf16AndF32RequestsDoNotCoalesceTogether) {
  const std::uint64_t seed = test_seed(2414);
  const GemmCase cs{16, 16, 16, Trans::kNoTrans, Trans::kNoTrans, 1.0, 0.0};
  const MixedProblem<bf16_t> pm(cs, seed);
  const testing::Problem<float> pf(cs, seed + 100);

  Matrix<float> cm_sync = pm.c.clone();
  run_mixed_ft<bf16_t>(cs, pm, cm_sync, {});
  Matrix<float> cf_sync = pf.c.clone();
  ft_sgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, float(cs.alpha),
           pf.a.data(), pf.a.ld(), pf.b.data(), pf.b.ld(), float(cs.beta),
           cf_sync.data(), cf_sync.ld());

  // Staged queue: pause, interleave both precisions, resume — the
  // dispatcher may only merge runs of matching precision.  If a bf16
  // request ever coalesced into an fp32 batched call (or vice versa) its
  // operand bytes would be reinterpreted and the result would be garbage.
  serve::ServiceConfig cfg;
  cfg.shards = 1;
  cfg.start_paused = true;
  serve::GemmService service(cfg);
  constexpr int kReps = 3;
  std::vector<Matrix<float>> cm, cf;
  std::vector<serve::GemmFuture> futures;
  for (int rep = 0; rep < kReps; ++rep) {
    cm.push_back(pm.c.clone());
    cf.push_back(pf.c.clone());
    futures.push_back(service.submit(serve::make_gemm_request<bf16_t>(
        true, Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k,
        float(cs.alpha), pm.a.data(), pm.a.ld(), pm.b.data(), pm.b.ld(),
        float(cs.beta), cm.back().data(), cm.back().ld())));
    futures.push_back(service.submit(serve::make_gemm_request<float>(
        true, Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k,
        float(cs.alpha), pf.a.data(), pf.a.ld(), pf.b.data(), pf.b.ld(),
        float(cs.beta), cf.back().data(), cf.back().ld())));
  }
  service.resume();
  for (auto& f : futures) EXPECT_TRUE(f.wait().ok()) << seed_note(seed);
  service.shutdown();
  for (int rep = 0; rep < kReps; ++rep) {
    expect_matrix_near(cm[std::size_t(rep)], cm_sync, 0.0,
                       "bf16 C rep " + std::to_string(rep) + seed_note(seed));
    expect_matrix_near(cf[std::size_t(rep)], cf_sync, 0.0,
                       "f32 C rep " + std::to_string(rep) + seed_note(seed));
  }
}

/// Fault-injection parity: injected mixed runs are corrected to the oracle
/// or flagged — never silently wrong — exactly like fp32.
template <typename S>
void injection_parity_sweep() {
  const std::uint64_t seed = test_seed(2415);
  const GemmCase cs{64, 48, 160, Trans::kNoTrans, Trans::kNoTrans, 1.0, 0.0};
  const MixedProblem<S> p(cs, seed);
  const Matrix<float> ref = p.reference(cs);

  // Deterministic single fault: must be detected and corrected.
  {
    DeterministicInjector inj({{InjectionKind::kAddDelta, 0, 10, 20, 2.5, 0}});
    Options opts;
    opts.injector = &inj;
    Matrix<float> c = p.c.clone();
    const FtReport rep = run_mixed_ft<S>(cs, p, c, opts);
    EXPECT_TRUE(rep.clean()) << cs << seed_note(seed);
    EXPECT_GE(rep.errors_detected, 1) << cs << seed_note(seed);
    EXPECT_GE(rep.errors_corrected, 1) << cs << seed_note(seed);
    expect_matrix_near(c, ref, gemm_tolerance<float>(cs.k),
                       cs.name() + "_corrected" + seed_note(seed));
  }

  // Random multi-fault runs: clean report implies oracle-accurate C.
  Xoshiro256 rng(seed ^ 0xF00D);
  for (int iter = 0; iter < 4; ++iter) {
    CountInjector inj(int(1 + rng.bounded(4)), rng.next(), 5.0);
    Options opts;
    opts.injector = &inj;
    Matrix<float> c = p.c.clone();
    const FtReport rep = run_mixed_ft<S>(cs, p, c, opts);
    if (rep.clean()) {
      const double err = max_rel_diff(c, ref);
      EXPECT_LE(err, std::max(gemm_tolerance<float>(cs.k), 1e-5))
          << cs << " iter=" << iter << seed_note(seed);
    }
  }
}

TEST(MixedInjectionParity, Bf16CorrectedOrFlagged) {
  injection_parity_sweep<bf16_t>();
}

TEST(MixedInjectionParity, F16CorrectedOrFlagged) {
  injection_parity_sweep<fp16_t>();
}

/// Batched mixed entry points agree with a loop of single calls.
TEST(MixedBatched, StridedBatchMatchesLoopOfSingles) {
  const std::uint64_t seed = test_seed(2416);
  const GemmCase cs{24, 20, 32, Trans::kNoTrans, Trans::kNoTrans, 1.5, 0.0};
  constexpr index_t kBatch = 5;
  const auto [am, an] = testing::a_dims(cs);
  const auto [bm, bn] = testing::b_dims(cs);
  Matrix<bf16_t> a(am, an * kBatch);
  Matrix<bf16_t> b(bm, bn * kBatch);
  Matrix<float> c(cs.m, cs.n * kBatch), c_loop(cs.m, cs.n * kBatch);
  a.fill_random(seed);
  b.fill_random(seed + 1);
  c.fill_random(seed + 2);
  for (index_t j = 0; j < c.cols(); ++j)
    for (index_t i = 0; i < c.rows(); ++i) c_loop(i, j) = c(i, j);

  const index_t sa = am * an, sb = bm * bn, sc = cs.m * cs.n;
  const BatchReport rep = ft_gemm_strided_batched<bf16_t, float>(
      Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, float(cs.alpha),
      a.data(), am, sa, b.data(), bm, sb, float(cs.beta), c.data(), cs.m, sc,
      kBatch);
  EXPECT_TRUE(rep.clean()) << seed_note(seed);
  EXPECT_EQ(rep.problems, kBatch);

  for (index_t pi = 0; pi < kBatch; ++pi) {
    const FtReport r = ft_gemm_bf16(
        Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, float(cs.alpha),
        a.data() + pi * sa, am, b.data() + pi * sb, bm, float(cs.beta),
        c_loop.data() + pi * sc, cs.m);
    EXPECT_TRUE(r.clean()) << "member " << pi << seed_note(seed);
  }
  expect_matrix_near(c, c_loop, 0.0, "batched vs loop" + seed_note(seed));
}

}  // namespace
}  // namespace ftgemm
