// Batched (FT-)GEMM subsystem tests.
//
// Invariants: (1) every batch member matches the naive-loop oracle in both
// Ori and FT modes, for both the pointer-array and strided forms and both
// precisions; (2) faults injected into any single batch member are detected
// and corrected, and only that member's report shows them; (3) degenerate
// inputs (empty batch, zero-dim problems) are well-defined no-ops; (4) the
// BatchReport aggregation equals the sum of the per-problem reports; (5) the
// scheduler's forced inter/intra modes both produce correct results.
#include <gtest/gtest.h>

#include <vector>

#include "core/gemm_batched.hpp"
#include "inject/campaign.hpp"
#include "test_common.hpp"

namespace ftgemm {
namespace {

using testing::gemm_tolerance;

/// One strided batch of random problems plus its naive-loop reference.
template <typename T>
struct BatchProblem {
  index_t m, n, k, batch;
  index_t sa, sb, sc;  ///< element strides between consecutive problems
  Matrix<T> a, b, c, ref;

  BatchProblem(index_t m_, index_t n_, index_t k_, index_t batch_,
               std::uint64_t seed = 11)
      : m(m_), n(n_), k(k_), batch(batch_), sa(m_ * k_), sb(k_ * n_),
        sc(m_ * n_), a(m, k * batch), b(k, n * batch), c(m, n * batch),
        ref(m, n * batch) {
    a.fill_random(seed);
    b.fill_random(seed + 1);
    c.fill_random(seed + 2);
    ref = c.clone();
    for (index_t p = 0; p < batch; ++p) naive_one(p);
  }

  void naive_one(index_t p) {
    if constexpr (sizeof(T) == 8) {
      baseline::naive_dgemm(Trans::kNoTrans, Trans::kNoTrans, m, n, k, T(1),
                            a.data() + p * sa, m, b.data() + p * sb, k,
                            T(0.5), ref.data() + p * sc, m);
    } else {
      baseline::naive_sgemm(Trans::kNoTrans, Trans::kNoTrans, m, n, k, T(1),
                            a.data() + p * sa, m, b.data() + p * sb, k,
                            T(0.5), ref.data() + p * sc, m);
    }
  }

  /// Worst |C - ref| over batch member p.
  double member_err(const Matrix<T>& got, index_t p) const {
    double worst = 0.0;
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i)
        worst = std::max(worst, std::abs(double(got(i, p * n + j)) -
                                         double(ref(i, p * n + j))));
    return worst;
  }

  /// Pointer arrays into the strided storage (for the array-of-pointers API).
  std::vector<const T*> aptrs() const {
    std::vector<const T*> v;
    for (index_t p = 0; p < batch; ++p) v.push_back(a.data() + p * sa);
    return v;
  }
  std::vector<const T*> bptrs() const {
    std::vector<const T*> v;
    for (index_t p = 0; p < batch; ++p) v.push_back(b.data() + p * sb);
    return v;
  }
  std::vector<T*> cptrs(Matrix<T>& cm) const {
    std::vector<T*> v;
    for (index_t p = 0; p < batch; ++p) v.push_back(cm.data() + p * sc);
    return v;
  }
};

template <typename T>
class BatchedGemmTyped : public ::testing::Test {};
using Precisions = ::testing::Types<float, double>;
TYPED_TEST_SUITE(BatchedGemmTyped, Precisions);

TYPED_TEST(BatchedGemmTyped, StridedMatchesNaiveLoop) {
  using T = TypeParam;
  BatchProblem<T> bp(37, 29, 53, 12);
  Matrix<T> c = bp.c.clone();

  const BatchReport rep = gemm_strided_batched<T>(
      Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, bp.m, bp.n, bp.k,
      T(1), bp.a.data(), bp.m, bp.sa, bp.b.data(), bp.k, bp.sb, T(0.5),
      c.data(), bp.m, bp.sc, bp.batch);

  EXPECT_EQ(rep.problems, bp.batch);
  EXPECT_TRUE(rep.clean());
  EXPECT_TRUE(rep.per_problem.empty()) << "Ori carries no per-problem FT data";
  const double tol = gemm_tolerance<T>(bp.k);
  for (index_t p = 0; p < bp.batch; ++p)
    EXPECT_LE(bp.member_err(c, p), tol) << "batch member " << p;
}

TYPED_TEST(BatchedGemmTyped, PointerArrayMatchesNaiveLoop) {
  using T = TypeParam;
  BatchProblem<T> bp(24, 45, 32, 9);
  Matrix<T> c = bp.c.clone();
  const auto ap = bp.aptrs();
  const auto bptr = bp.bptrs();
  const auto cp = bp.cptrs(c);

  const BatchReport rep = gemm_batched<T>(
      Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, bp.m, bp.n, bp.k,
      T(1), ap.data(), bp.m, bptr.data(), bp.k, T(0.5), cp.data(), bp.m,
      bp.batch);

  EXPECT_EQ(rep.problems, bp.batch);
  const double tol = gemm_tolerance<T>(bp.k);
  for (index_t p = 0; p < bp.batch; ++p)
    EXPECT_LE(bp.member_err(c, p), tol) << "batch member " << p;
}

TYPED_TEST(BatchedGemmTyped, FtMatchesNaiveLoopAndReportsClean) {
  using T = TypeParam;
  BatchProblem<T> bp(33, 41, 64, 8);
  Matrix<T> c = bp.c.clone();

  const BatchReport rep = ft_gemm_strided_batched<T>(
      Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, bp.m, bp.n, bp.k,
      T(1), bp.a.data(), bp.m, bp.sa, bp.b.data(), bp.k, bp.sb, T(0.5),
      c.data(), bp.m, bp.sc, bp.batch);

  EXPECT_EQ(rep.problems, bp.batch);
  EXPECT_EQ(index_t(rep.per_problem.size()), bp.batch);
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.errors_detected, 0);
  EXPECT_EQ(rep.faulty_problems, 0);
  const double tol = gemm_tolerance<T>(bp.k);
  for (index_t p = 0; p < bp.batch; ++p)
    EXPECT_LE(bp.member_err(c, p), tol) << "batch member " << p;
}

TEST(BatchedGemm, ForcedSchedulesBothCorrect) {
  for (const BatchSchedule sched :
       {BatchSchedule::kInter, BatchSchedule::kIntra}) {
    BatchProblem<double> bp(31, 27, 40, 7);
    Matrix<double> c = bp.c.clone();
    BatchOptions opts;
    opts.schedule = sched;
    const BatchReport rep = ft_gemm_strided_batched<double>(
        Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, bp.m, bp.n,
        bp.k, 1.0, bp.a.data(), bp.m, bp.sa, bp.b.data(), bp.k, bp.sb, 0.5,
        c.data(), bp.m, bp.sc, bp.batch, opts);
    EXPECT_EQ(rep.inter_batch, sched == BatchSchedule::kInter);
    EXPECT_TRUE(rep.clean());
    const double tol = gemm_tolerance<double>(bp.k);
    for (index_t p = 0; p < bp.batch; ++p)
      EXPECT_LE(bp.member_err(c, p), tol)
          << "schedule=" << int(sched) << " member " << p;
  }
}

TEST(BatchedGemm, AutoPrefersInterForSmallProblems) {
  BatchProblem<double> bp(32, 32, 32, 6);
  Matrix<double> c = bp.c.clone();
  const BatchReport rep = ft_gemm_strided_batched<double>(
      Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, bp.m, bp.n, bp.k,
      1.0, bp.a.data(), bp.m, bp.sa, bp.b.data(), bp.k, bp.sb, 0.5, c.data(),
      bp.m, bp.sc, bp.batch);
  EXPECT_TRUE(rep.inter_batch) << "32^3 problems are far below the cutoff";
}

TEST(BatchedGemm, RowMajorStridedMatchesColMajor) {
  // A row-major batch is the transpose view of a column-major one; run both
  // and compare member-by-member.
  const index_t m = 19, n = 23, k = 31, batch = 5;
  BatchProblem<double> bp(m, n, k, batch);
  Matrix<double> c_cm = bp.c.clone();
  gemm_strided_batched<double>(Layout::kColMajor, Trans::kNoTrans,
                               Trans::kNoTrans, m, n, k, 1.0, bp.a.data(), m,
                               bp.sa, bp.b.data(), k, bp.sb, 0.5, c_cm.data(),
                               m, bp.sc, batch);

  // The same memory image read row-major is C^T = B^T A^T per member, so a
  // row-major call with swapped operands and (n, m) must canonicalize onto
  // the identical column-major core invocation — results agree bitwise.
  Matrix<double> c_rm = bp.c.clone();
  gemm_strided_batched<double>(Layout::kRowMajor, Trans::kNoTrans,
                               Trans::kNoTrans, n, m, k, 1.0, bp.b.data(), k,
                               bp.sb, bp.a.data(), m, bp.sa, 0.5, c_rm.data(),
                               m, bp.sc, batch);
  EXPECT_DOUBLE_EQ(max_abs_diff(c_cm, c_rm), 0.0);
}

TEST(BatchedGemm, EmptyBatchAndZeroDimsAreNoOps) {
  BatchOptions opts;
  // batch = 0: nothing to do, report empty.
  const BatchReport r0 = ft_gemm_strided_batched<double>(
      Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, 8, 8, 8, 1.0,
      nullptr, 8, 0, nullptr, 8, 0, 0.0, nullptr, 8, 0, 0, opts);
  EXPECT_EQ(r0.problems, 0);
  EXPECT_TRUE(r0.clean());
  EXPECT_TRUE(r0.per_problem.empty());

  // m = 0 / n = 0: every member is an empty problem; C untouched.
  const BatchReport rm = ft_gemm_strided_batched<double>(
      Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, 0, 8, 8, 1.0,
      nullptr, 1, 0, nullptr, 8, 0, 0.0, nullptr, 1, 0, 3, opts);
  EXPECT_EQ(rm.problems, 3);
  EXPECT_TRUE(rm.clean());
  EXPECT_EQ(index_t(rm.per_problem.size()), 3);

  // k = 0 degenerates to C *= beta, still per-member.
  Matrix<double> c(4, 4 * 2);
  c.fill(2.0);
  const BatchReport rk = ft_gemm_strided_batched<double>(
      Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, 4, 4, 0, 1.0,
      nullptr, 4, 0, nullptr, 1, 0, 0.5, c.data(), 4, 16, 2, opts);
  EXPECT_EQ(rk.problems, 2);
  EXPECT_TRUE(rk.clean());
  for (index_t j = 0; j < c.cols(); ++j)
    for (index_t i = 0; i < c.rows(); ++i) EXPECT_DOUBLE_EQ(c(i, j), 1.0);
}

TEST(BatchedGemm, InjectedFaultsCorrectedOnTargetMember) {
  // Aim a deterministic burst of faults at each member in turn; the batch
  // must come out correct every time and only the target's report may show
  // detections.
  const index_t m = 48, n = 40, k = 96, batch = 6;
  BatchProblem<double> bp(m, n, k, batch, 21);
  const double tol = gemm_tolerance<double>(k);

  for (index_t target = 0; target < batch; ++target) {
    Matrix<double> c = bp.c.clone();
    CountInjector injector(3, 1000 + std::uint64_t(target), 8.0);
    BatchOptions opts;
    opts.base.injector = &injector;
    opts.inject_problem = target;

    const BatchReport rep = ft_gemm_strided_batched<double>(
        Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, k, 1.0,
        bp.a.data(), m, bp.sa, bp.b.data(), k, bp.sb, 0.5, c.data(), m,
        bp.sc, batch, opts);

    EXPECT_TRUE(rep.clean()) << "target " << target;
    EXPECT_EQ(injector.injected_count(), 3u) << "target " << target;
    EXPECT_EQ(rep.errors_corrected, 3) << "target " << target;
    EXPECT_EQ(rep.faulty_problems, 1) << "target " << target;
    for (index_t p = 0; p < batch; ++p) {
      EXPECT_LE(bp.member_err(c, p), tol)
          << "target " << target << " member " << p;
      const FtReport& r = rep.per_problem[std::size_t(p)];
      if (p == target) {
        EXPECT_EQ(r.errors_corrected, 3) << "target " << target;
      } else {
        EXPECT_EQ(r.errors_detected, 0)
            << "fault leaked to member " << p << " (target " << target << ")";
      }
    }
  }
}

TEST(BatchedGemm, SharedInjectorForcesIntraAndHitsEveryMember) {
  // inject_problem < 0 attaches the injector to all members; the scheduler
  // must serialize (inter_batch == false) and every member still corrects.
  const index_t m = 40, n = 40, k = 80, batch = 4;
  BatchProblem<double> bp(m, n, k, batch, 33);
  Matrix<double> c = bp.c.clone();

  CountInjector injector(2, 77, 6.0);  // 2 faults per *member* call
  BatchOptions opts;
  opts.base.injector = &injector;
  opts.inject_problem = -1;

  const BatchReport rep = ft_gemm_strided_batched<double>(
      Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, k, 1.0,
      bp.a.data(), m, bp.sa, bp.b.data(), k, bp.sb, 0.5, c.data(), m, bp.sc,
      batch, opts);

  EXPECT_FALSE(rep.inter_batch) << "shared injector must serialize the batch";
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(injector.injected_count(), std::size_t(2 * batch));
  EXPECT_EQ(rep.errors_corrected, 2 * batch);
  EXPECT_EQ(rep.faulty_problems, batch);
  const double tol = gemm_tolerance<double>(k);
  for (index_t p = 0; p < batch; ++p)
    EXPECT_LE(bp.member_err(c, p), tol) << "member " << p;
}

TEST(BatchedGemm, SharedCorrectionLogForcesIntra) {
  // The Options contract forbids appending to one correction log from
  // concurrent GEMMs; a log shared across all members (inject_problem < 0)
  // must therefore serialize the batch even without an injector.
  BatchProblem<double> bp(16, 16, 16, 4);
  Matrix<double> c = bp.c.clone();
  std::vector<CorrectionRecord> log;
  BatchOptions opts;
  opts.base.correction_log = &log;
  opts.inject_problem = -1;
  const BatchReport rep = ft_gemm_strided_batched<double>(
      Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, bp.m, bp.n, bp.k,
      1.0, bp.a.data(), bp.m, bp.sa, bp.b.data(), bp.k, bp.sb, 0.5, c.data(),
      bp.m, bp.sc, bp.batch, opts);
  EXPECT_FALSE(rep.inter_batch) << "shared correction log must serialize";
  EXPECT_TRUE(rep.clean());
  EXPECT_TRUE(log.empty()) << "fault-free run corrects nothing";
}

TEST(BatchedGemm, ReportAggregationMatchesPerProblemSum) {
  const index_t m = 32, n = 32, k = 64, batch = 5;
  BatchProblem<double> bp(m, n, k, batch, 55);
  Matrix<double> c = bp.c.clone();
  CountInjector injector(4, 5, 7.0);
  BatchOptions opts;
  opts.base.injector = &injector;
  opts.inject_problem = 2;

  const BatchReport rep = ft_gemm_strided_batched<double>(
      Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, k, 1.0,
      bp.a.data(), m, bp.sa, bp.b.data(), k, bp.sb, 0.5, c.data(), m, bp.sc,
      batch, opts);

  std::int64_t det = 0, cor = 0, unc = 0;
  index_t faulty = 0, dirty = 0;
  for (const FtReport& r : rep.per_problem) {
    det += r.errors_detected;
    cor += r.errors_corrected;
    unc += r.uncorrectable_panels;
    if (r.errors_detected > 0) ++faulty;
    if (!r.clean()) ++dirty;
  }
  EXPECT_EQ(rep.errors_detected, det);
  EXPECT_EQ(rep.errors_corrected, cor);
  EXPECT_EQ(rep.uncorrectable_panels, unc);
  EXPECT_EQ(rep.faulty_problems, faulty);
  EXPECT_EQ(rep.dirty_problems, dirty);
  EXPECT_GE(rep.elapsed_seconds, 0.0);
}

TEST(BatchedGemm, ForcedInterWithSharedInjectorIsWellDefined) {
  // Regression for the former limitation: an injector attached to every
  // member (inject_problem < 0) used to silently downgrade a forced kInter
  // to intra-batch, because the begin_call/plan_block protocol is per-call
  // stateful.  The dispatcher now honors kInter and serializes the injected
  // members' execution instead — the protocol must come out exact: every
  // member's faults planned, applied, detected, and corrected, with no
  // leakage between members.
  const index_t m = 40, n = 36, k = 80, batch = 6;
  BatchProblem<double> bp(m, n, k, batch, 91);
  Matrix<double> c = bp.c.clone();

  CountInjector injector(2, 123, 6.0);  // 2 faults per member call
  BatchOptions opts;
  opts.base.injector = &injector;
  opts.inject_problem = -1;
  opts.schedule = BatchSchedule::kInter;

  const BatchReport rep = ft_gemm_strided_batched<double>(
      Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, k, 1.0,
      bp.a.data(), m, bp.sa, bp.b.data(), k, bp.sb, 0.5, c.data(), m, bp.sc,
      batch, opts);

  EXPECT_TRUE(rep.inter_batch) << "a forced kInter schedule is honored";
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(injector.injected_count(), std::size_t(2 * batch));
  EXPECT_EQ(rep.errors_corrected, 2 * batch);
  EXPECT_EQ(rep.faulty_problems, batch);
  const double tol = gemm_tolerance<double>(k);
  for (index_t p = 0; p < batch; ++p) {
    EXPECT_LE(bp.member_err(c, p), tol) << "member " << p;
    EXPECT_EQ(rep.per_problem[std::size_t(p)].errors_corrected, 2)
        << "member " << p << " saw another member's schedule";
  }
}

TEST(BatchedGemm, AutoStillSerializesSharedSinks) {
  // kAuto keeps preferring intra-batch for shared sinks (whole-batch
  // serialization keeps all cores busy on the one running problem).
  BatchProblem<double> bp(24, 24, 32, 4);
  Matrix<double> c = bp.c.clone();
  CountInjector injector(1, 9, 5.0);
  BatchOptions opts;
  opts.base.injector = &injector;
  opts.inject_problem = -1;
  const BatchReport rep = ft_gemm_strided_batched<double>(
      Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, bp.m, bp.n, bp.k,
      1.0, bp.a.data(), bp.m, bp.sa, bp.b.data(), bp.k, bp.sb, 0.5, c.data(),
      bp.m, bp.sc, bp.batch, opts);
  EXPECT_FALSE(rep.inter_batch);
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.errors_corrected, bp.batch);
}

TEST(BatchedCampaign, ForcedInterCampaignIsReliable) {
  // The serving-regime campaign under inter-batch scheduling: one random
  // target per run, concurrent untargeted members, protocol still exact.
  BatchedCampaignConfig config;
  config.size = 48;
  config.batch = 8;
  config.runs = 5;
  config.errors_per_run = 2;
  config.seed = 77;
  config.schedule = BatchSchedule::kInter;
  const BatchedCampaignResult res = run_batched_injection_campaign(config);
  EXPECT_EQ(res.injected, std::size_t(config.runs * config.errors_per_run));
  EXPECT_EQ(res.corrected, std::int64_t(config.runs * config.errors_per_run));
  EXPECT_EQ(res.dirty_problems, 0);
  EXPECT_TRUE(res.reliable());
}

TEST(BatchedCampaign, RandomTargetCampaignIsReliable) {
  BatchedCampaignConfig config;
  config.size = 64;
  config.batch = 8;
  config.runs = 6;
  config.errors_per_run = 3;
  config.seed = 2024;
  const BatchedCampaignResult res = run_batched_injection_campaign(config);

  EXPECT_EQ(res.targets.size(), 6u);
  for (const index_t t : res.targets) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, config.batch);
  }
  EXPECT_EQ(res.injected, std::size_t(config.runs * config.errors_per_run));
  EXPECT_EQ(res.corrected, std::int64_t(config.runs * config.errors_per_run));
  EXPECT_EQ(res.dirty_problems, 0);
  EXPECT_TRUE(res.reliable());
  EXPECT_LE(res.max_rel_error, 1e-9);
}

}  // namespace
}  // namespace ftgemm
