// Tests for the DMR-protected Level-1/2 substrate (FT-BLAS, ref [4]).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ftblas/level1.hpp"
#include "ftblas/level2.hpp"
#include "util/matrix.hpp"

namespace ftgemm::ftblas {
namespace {

std::vector<double> random_vec(index_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

// ---------------------------------------------------------------------------
// Plain (baseline) routines.
// ---------------------------------------------------------------------------

TEST(Dscal, ScalesWithStride) {
  std::vector<double> x = {1, 2, 3, 4, 5, 6};
  dscal(3, 2.0, x.data(), 2);
  EXPECT_EQ(x, (std::vector<double>{2, 2, 6, 4, 10, 6}));
}

TEST(Daxpy, AccumulatesWithStride) {
  std::vector<double> x = {1, 1, 1};
  std::vector<double> y = {1, 2, 3};
  daxpy(3, 0.5, x.data(), 1, y.data(), 1);
  EXPECT_EQ(y, (std::vector<double>{1.5, 2.5, 3.5}));
}

TEST(Ddot, MatchesManualSum) {
  const auto x = random_vec(1537, 1);
  const auto y = random_vec(1537, 2);
  double want = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) want += x[i] * y[i];
  EXPECT_NEAR(ddot(1537, x.data(), 1, y.data(), 1), want, 1e-10);
}

TEST(Dnrm2, MatchesStd) {
  const auto x = random_vec(777, 3);
  double ss = 0.0;
  for (double v : x) ss += v * v;
  EXPECT_NEAR(dnrm2(777, x.data(), 1), std::sqrt(ss), 1e-10);
}

// ---------------------------------------------------------------------------
// DMR-protected routines, fault-free: identical results, clean reports.
// ---------------------------------------------------------------------------

class FtL1Sweep : public ::testing::TestWithParam<index_t> {};

TEST_P(FtL1Sweep, ScalMatchesPlain) {
  const index_t n = GetParam();
  auto x1 = random_vec(n, 10);
  auto x2 = x1;
  dscal(n, -1.75, x1.data(), 1);
  const DmrReport rep = ft_dscal(n, -1.75, x2.data(), 1);
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(x1, x2) << "DMR path must be bitwise identical";
}

TEST_P(FtL1Sweep, AxpyMatchesPlain) {
  const index_t n = GetParam();
  const auto x = random_vec(n, 11);
  auto y1 = random_vec(n, 12);
  auto y2 = y1;
  daxpy(n, 0.3, x.data(), 1, y1.data(), 1);
  const DmrReport rep = ft_daxpy(n, 0.3, x.data(), 1, y2.data(), 1);
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(y1, y2);
}

TEST_P(FtL1Sweep, DotMatchesPlain) {
  const index_t n = GetParam();
  const auto x = random_vec(n, 13);
  const auto y = random_vec(n, 14);
  DmrReport rep;
  const double got = ft_ddot(n, x.data(), 1, y.data(), 1, &rep);
  EXPECT_TRUE(rep.clean());
  // Block-wise DMR accumulation uses a different summation order than the
  // single-sweep plain dot.
  const double want = ddot(n, x.data(), 1, y.data(), 1);
  EXPECT_NEAR(got, want, 1e-10 * std::max(1.0, std::abs(want)) *
                             std::sqrt(double(std::max<index_t>(n, 1))));
}

TEST_P(FtL1Sweep, Nrm2MatchesPlain) {
  const index_t n = GetParam();
  const auto x = random_vec(n, 15);
  DmrReport rep;
  const double want = dnrm2(n, x.data(), 1);
  EXPECT_NEAR(ft_dnrm2(n, x.data(), 1, &rep), want, 1e-10 * (1.0 + want));
  EXPECT_TRUE(rep.clean());
}

INSTANTIATE_TEST_SUITE_P(Sizes, FtL1Sweep,
                         ::testing::Values<index_t>(0, 1, 7, 511, 512, 513,
                                                    4096, 10000));

// ---------------------------------------------------------------------------
// DMR fault injection: corrupt the primary stream, require detection+heal.
// ---------------------------------------------------------------------------

TEST(FtDscalInjection, DetectsAndHeals) {
  const index_t n = 2000;
  auto x = random_vec(n, 20);
  auto want = x;
  dscal(n, 3.0, want.data(), 1);

  int fired = 0;
  const StreamFaultHook hook = [&fired](double* block, index_t start,
                                        index_t len) {
    if (start == 512 && len > 3 && fired == 0) {
      block[3] += 42.0;
      ++fired;
    }
  };
  const DmrReport rep = ft_dscal(n, 3.0, x.data(), 1, hook);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(rep.faults_detected, 1);
  EXPECT_EQ(rep.recomputations, 1);
  EXPECT_EQ(x, want) << "healed output must equal the fault-free result";
}

TEST(FtDaxpyInjection, DetectsAndHeals) {
  const index_t n = 1024;
  const auto x = random_vec(n, 21);
  auto y = random_vec(n, 22);
  auto want = y;
  daxpy(n, -0.5, x.data(), 1, want.data(), 1);

  const StreamFaultHook hook = [](double* block, index_t start, index_t) {
    if (start == 0) block[0] = 1e30;
  };
  const DmrReport rep = ft_daxpy(n, -0.5, x.data(), 1, y.data(), 1, hook);
  EXPECT_GE(rep.faults_detected, 1);
  EXPECT_EQ(y, want);
}

TEST(FtDdotInjection, DetectsAndHeals) {
  const index_t n = 3000;
  const auto x = random_vec(n, 23);
  const auto y = random_vec(n, 24);
  const double want = ddot(n, x.data(), 1, y.data(), 1);

  const StreamFaultHook hook = [](double* partial, index_t start, index_t) {
    if (start == 1024) *partial += 7.0;
  };
  DmrReport rep;
  const double got = ft_ddot(n, x.data(), 1, y.data(), 1, &rep, hook);
  EXPECT_EQ(rep.faults_detected, 1);
  EXPECT_DOUBLE_EQ(got, want);
}

TEST(FtL1Injection, EveryBlockPositionHealed) {
  // Property sweep: a corruption in any block must be healed.
  const index_t n = 2100;  // 5 blocks, last one partial
  for (index_t target = 0; target < n; target += 397) {
    auto x = random_vec(n, 30 + std::uint64_t(target));
    auto want = x;
    dscal(n, 1.5, want.data(), 1);
    const StreamFaultHook hook = [target](double* block, index_t start,
                                          index_t len) {
      if (target >= start && target < start + len)
        block[target - start] -= 3.25;
    };
    const DmrReport rep = ft_dscal(n, 1.5, x.data(), 1, hook);
    EXPECT_EQ(rep.faults_detected, 1) << "target " << target;
    EXPECT_EQ(x, want) << "target " << target;
  }
}

// ---------------------------------------------------------------------------
// Level-2: gemv.
// ---------------------------------------------------------------------------

class GemvSweep
    : public ::testing::TestWithParam<std::tuple<index_t, index_t, Trans>> {};

TEST_P(GemvSweep, PlainMatchesManual) {
  const auto [m, n, trans] = GetParam();
  Matrix<double> a(m, n);
  a.fill_random(40);
  const index_t xlen = trans == Trans::kNoTrans ? n : m;
  const index_t ylen = trans == Trans::kNoTrans ? m : n;
  const auto x = random_vec(xlen, 41);
  auto y = random_vec(ylen, 42);
  auto want = y;

  // Manual oracle.
  for (index_t r = 0; r < ylen; ++r) {
    double acc = 0.0;
    for (index_t q = 0; q < xlen; ++q) {
      const double aval = trans == Trans::kNoTrans ? a(r, q) : a(q, r);
      acc += aval * x[std::size_t(q)];
    }
    want[std::size_t(r)] = 1.5 * acc + 0.5 * want[std::size_t(r)];
  }

  dgemv(trans, m, n, 1.5, a.data(), a.ld(), x.data(), 1, 0.5, y.data(), 1);
  for (index_t r = 0; r < ylen; ++r)
    EXPECT_NEAR(y[std::size_t(r)], want[std::size_t(r)],
                1e-11 * std::max(1.0, std::abs(want[std::size_t(r)])));
}

TEST_P(GemvSweep, FtMatchesPlainAndClean) {
  const auto [m, n, trans] = GetParam();
  Matrix<double> a(m, n);
  a.fill_random(50);
  const index_t xlen = trans == Trans::kNoTrans ? n : m;
  const index_t ylen = trans == Trans::kNoTrans ? m : n;
  const auto x = random_vec(xlen, 51);
  auto y1 = random_vec(ylen, 52);
  auto y2 = y1;

  dgemv(trans, m, n, -2.0, a.data(), a.ld(), x.data(), 1, 1.0, y1.data(), 1);
  const DmrReport rep = ft_dgemv(trans, m, n, -2.0, a.data(), a.ld(),
                                 x.data(), 1, 1.0, y2.data(), 1);
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(y1, y2);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemvSweep,
    ::testing::Combine(::testing::Values<index_t>(1, 33, 512, 1000),
                       ::testing::Values<index_t>(1, 29, 600),
                       ::testing::Values(Trans::kNoTrans, Trans::kTrans)),
    [](const auto& info) {
      return "m" + std::to_string(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) == Trans::kTrans ? "_T" : "_N");
    });

TEST(FtDgemvInjection, DetectsAndHeals) {
  const index_t m = 700, n = 300;
  Matrix<double> a(m, n);
  a.fill_random(60);
  const auto x = random_vec(n, 61);
  auto y = random_vec(m, 62);
  auto want = y;
  dgemv(Trans::kNoTrans, m, n, 1.0, a.data(), a.ld(), x.data(), 1, 0.0,
        want.data(), 1);

  const StreamFaultHook hook = [](double* block, index_t start, index_t len) {
    if (start == 512 && len > 10) block[10] *= -1.0;
  };
  const DmrReport rep = ft_dgemv(Trans::kNoTrans, m, n, 1.0, a.data(),
                                 a.ld(), x.data(), 1, 0.0, y.data(), 1, hook);
  EXPECT_EQ(rep.faults_detected, 1);
  EXPECT_EQ(y, want);
}

}  // namespace
}  // namespace ftgemm::ftblas
