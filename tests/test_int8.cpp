// int8 quantized FT-GEMM suite (core/gemm_i8.hpp): every comparison here is
// BIT-EXACT (expect_matrix_near at tolerance 0.0).  The path computes in
// exact integer arithmetic and dequantizes through one deterministic double
// expression, so the widened-int64 oracle (naive_ref_gemm_i8) must agree to
// the last bit — across transposes, layouts, thread counts, ISAs, resident
// hits, batching, and the serving layer.  The same exactness makes the FT
// contract strict both ways: a clean run may never report a detection
// (tolerance-zero verification cannot false-positive, DESIGN.md §11), and
// an injected run that reports clean() must have corrected C exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/gemm_i8.hpp"
#include "inject/injectors.hpp"
#include "serve/service.hpp"
#include "test_common.hpp"

namespace ftgemm {
namespace {

using testing::expect_matrix_near;
using testing::naive_ref_gemm_i8;
using testing::random_i8_matrix;
using testing::random_quant_params;
using testing::seed_note;
using testing::test_seed;

/// Operands of one column-major int8 case: s8 A/B over the full lane range,
/// random fp32 C.
struct I8Problem {
  Matrix<std::int8_t> a, b;
  Matrix<float> c;

  I8Problem(index_t m, index_t n, index_t k, Trans ta, Trans tb,
            std::uint64_t seed, index_t ld_slack = 0) {
    const index_t am = ta == Trans::kNoTrans ? m : k;
    const index_t an = ta == Trans::kNoTrans ? k : m;
    const index_t bm = tb == Trans::kNoTrans ? k : n;
    const index_t bn = tb == Trans::kNoTrans ? n : k;
    a = random_i8_matrix(am, an, seed, am + ld_slack);
    b = random_i8_matrix(bm, bn, seed ^ 0xB0B0, bm + ld_slack);
    c = Matrix<float>(m, n, m + ld_slack);
    c.fill_random(seed ^ 0xC0DE, -4.0f, 4.0f);
  }
};

/// Run one column-major case through Ori and FT and demand bit-identity
/// with the oracle plus a spotless FT report.
void check_case(index_t m, index_t n, index_t k, Trans ta, Trans tb,
                float alpha, float beta, const QuantParams& qp,
                std::uint64_t seed, const Options& opts = {},
                index_t ld_slack = 0) {
  const std::string label = std::to_string(m) + "x" + std::to_string(n) +
                            "x" + std::to_string(k) +
                            (ta == Trans::kTrans ? "_Ta" : "_Na") +
                            (tb == Trans::kTrans ? "_Tb" : "_Nb");
  I8Problem p(m, n, k, ta, tb, seed, ld_slack);
  Matrix<float> want = p.c.clone();
  naive_ref_gemm_i8(Layout::kColMajor, ta, tb, m, n, k, alpha, p.a.data(),
                    p.a.ld(), p.b.data(), p.b.ld(), beta, want.data(),
                    want.ld(), qp);

  Matrix<float> ori = p.c.clone();
  gemm_i8(Layout::kColMajor, ta, tb, m, n, k, alpha, p.a.data(), p.a.ld(),
          p.b.data(), p.b.ld(), beta, ori.data(), ori.ld(), qp, opts);
  expect_matrix_near(ori, want, 0.0, "ori " + label + seed_note(seed));

  Matrix<float> ft = p.c.clone();
  const FtReport rep =
      ft_gemm_i8(Layout::kColMajor, ta, tb, m, n, k, alpha, p.a.data(),
                 p.a.ld(), p.b.data(), p.b.ld(), beta, ft.data(), ft.ld(),
                 qp, opts);
  expect_matrix_near(ft, want, 0.0, "ft " + label + seed_note(seed));
  EXPECT_FALSE(rep.invalid_args) << label;
  EXPECT_TRUE(rep.clean()) << label;
  EXPECT_EQ(rep.errors_detected, 0)
      << label << ": tolerance-zero verification false-positived"
      << seed_note(seed);
  EXPECT_EQ(rep.errors_corrected, 0) << label;
  if (k > 0 && alpha != 0.0f && m > 0 && n > 0) {
    EXPECT_GE(rep.panels, 1) << label;
  }
}

TEST(Int8Gemm, ExactVsOracleAllShapesAndTransposes) {
  const std::uint64_t seed = test_seed(23);
  const QuantParams qp{0.02f, 0.5f, 3, -7};
  const struct { index_t m, n, k; } shapes[] = {
      {1, 1, 1},   {2, 3, 4},    {5, 5, 64},    {16, 16, 16}, {17, 19, 23},
      {31, 33, 37}, {64, 48, 96}, {8, 7, 501},  {1, 33, 250}, {130, 120, 600},
  };
  int idx = 0;
  for (const auto& s : shapes) {
    for (Trans ta : {Trans::kNoTrans, Trans::kTrans}) {
      for (Trans tb : {Trans::kNoTrans, Trans::kTrans}) {
        check_case(s.m, s.n, s.k, ta, tb, 0.5f, 1.0f, qp, seed + idx++);
      }
    }
  }
}

TEST(Int8Gemm, ScalarAndQuantVariants) {
  const std::uint64_t seed = test_seed(29);
  const float alphas[] = {1.0f, -1.25f, 2.0f};
  const float betas[] = {0.0f, 1.0f, -0.5f};
  const QuantParams qps[] = {
      {},                              // identity quantization
      {0.02f, 0.5f, 3, -7},            // generic scales + zeros
      {0.125f, 0.25f, -128, 127},      // extreme zero points
      {3.0f, 0.07f, 100, -100},        // inexact scale product
  };
  int idx = 0;
  for (float alpha : alphas) {
    for (float beta : betas) {
      for (const QuantParams& qp : qps) {
        check_case(31, 33, 37, Trans::kNoTrans, Trans::kNoTrans, alpha, beta,
                   qp, seed + idx, {}, /*ld_slack=*/(idx % 3));
        ++idx;
      }
    }
  }
}

/// Saturated operand tiles: every lane at an s8 extreme.  All-(-128) A is
/// the biased-domain edge (u8 = 0); all-(+127) against all-(-128) drives
/// each biased product to its +/-32640 bound.
TEST(Int8Gemm, CornerTilesAtLaneExtremes) {
  const std::int8_t lo = -128, hi = 127;
  const QuantParams qps[] = {{}, {0.5f, 0.25f, -128, 127}};
  const struct { index_t m, n, k; } shapes[] = {{64, 64, 64}, {37, 29, 131}};
  for (const auto& s : shapes) {
    for (const QuantParams& qp : qps) {
      for (std::int8_t av : {lo, hi}) {
        for (std::int8_t bv : {lo, hi}) {
          Matrix<std::int8_t> a(s.m, s.k), b(s.k, s.n);
          a.fill(av);
          b.fill(bv);
          Matrix<float> c(s.m, s.n);
          c.fill(1.5f);
          Matrix<float> want = c.clone();
          naive_ref_gemm_i8(Layout::kColMajor, Trans::kNoTrans,
                            Trans::kNoTrans, s.m, s.n, s.k, 1.0f, a.data(),
                            a.ld(), b.data(), b.ld(), 0.5f, want.data(),
                            want.ld(), qp);
          Matrix<float> got = c.clone();
          const FtReport rep = ft_gemm_i8(
              Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, s.m, s.n,
              s.k, 1.0f, a.data(), a.ld(), b.data(), b.ld(), 0.5f,
              got.data(), got.ld(), qp);
          EXPECT_TRUE(rep.clean());
          EXPECT_EQ(rep.errors_detected, 0);
          expect_matrix_near(got, want, 0.0,
                             "corner a=" + std::to_string(av) +
                                 " b=" + std::to_string(bv));
        }
      }
    }
  }
}

/// The depth bound is tight: k == kI8MaxDepth with every biased product at
/// its bound drives an accumulator to -2147483520 — 128 short of int32
/// wrap — and must still be exact; k == kI8MaxDepth + 1 is rejected with C
/// untouched.
TEST(Int8Gemm, DepthBoundaryExactThenRejected) {
  {
    const index_t k = kI8MaxDepth;
    Matrix<std::int8_t> a(1, k), b(k, 1);
    a.fill(std::int8_t(127));   // biased u8 = 255
    b.fill(std::int8_t(-128));  // product -32640 each
    Matrix<float> c(1, 1);
    c(0, 0) = 0.25f;
    Matrix<float> want = c.clone();
    naive_ref_gemm_i8(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, 1,
                      1, k, 1.0f, a.data(), a.ld(), b.data(), b.ld(), 1.0f,
                      want.data(), want.ld(), {});
    Matrix<float> got = c.clone();
    const FtReport rep = ft_gemm_i8(Layout::kColMajor, Trans::kNoTrans,
                                    Trans::kNoTrans, 1, 1, k, 1.0f, a.data(),
                                    a.ld(), b.data(), b.ld(), 1.0f,
                                    got.data(), got.ld());
    EXPECT_FALSE(rep.invalid_args);
    EXPECT_TRUE(rep.clean());
    EXPECT_EQ(rep.errors_detected, 0);
    expect_matrix_near(got, want, 0.0, "k == kI8MaxDepth");
  }
  {
    const index_t k = kI8MaxDepth + 1;
    std::vector<std::int8_t> a(std::size_t(k), 0), b(std::size_t(k), 0);
    Matrix<float> c(2, 2);
    c.fill(3.0f);
    Matrix<float> before = c.clone();
    const FtReport rep = ft_gemm_i8(Layout::kColMajor, Trans::kNoTrans,
                                    Trans::kNoTrans, 1, 1, k, 1.0f, a.data(),
                                    1, b.data(), k, 1.0f, c.data(), c.ld());
    EXPECT_TRUE(rep.invalid_args);
    EXPECT_EQ(rep.panels, 0);
    gemm_i8(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, 1, 1, k,
            1.0f, a.data(), 1, b.data(), k, 1.0f, c.data(), c.ld());
    expect_matrix_near(c, before, 0.0, "rejected call touched C");
  }
}

/// Regression for the biased-pack sign flip: alternating -128/+127 rows in
/// A (the two lanes whose u8 images are 0 and 255) against a random B, with
/// a zero point that annihilates half the terms.
TEST(Int8Gemm, NegativeAValuesAgainstBiasEdge) {
  const std::uint64_t seed = test_seed(31);
  const index_t m = 48, n = 33, k = 190;
  Matrix<std::int8_t> a(m, k);
  for (index_t kk = 0; kk < k; ++kk) {
    for (index_t i = 0; i < m; ++i) {
      a(i, kk) = ((i + kk) % 2) ? std::int8_t(-128) : std::int8_t(127);
    }
  }
  Matrix<std::int8_t> b = random_i8_matrix(k, n, seed);
  Matrix<float> c(m, n);
  c.fill_random(seed + 1);
  const QuantParams qp{0.5f, 1.0f, -128, 5};  // a - za == 0 on the -128 lanes
  Matrix<float> want = c.clone();
  naive_ref_gemm_i8(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m,
                    n, k, 1.5f, a.data(), a.ld(), b.data(), b.ld(), 0.75f,
                    want.data(), want.ld(), qp);
  Matrix<float> got = c.clone();
  const FtReport rep = ft_gemm_i8(Layout::kColMajor, Trans::kNoTrans,
                                  Trans::kNoTrans, m, n, k, 1.5f, a.data(),
                                  a.ld(), b.data(), b.ld(), 0.75f,
                                  got.data(), got.ld(), qp);
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.errors_detected, 0);
  expect_matrix_near(got, want, 0.0, "bias-edge A" + seed_note(seed));
}

/// Row-major calls re-associate the scale product (normalize_quant swaps
/// the QuantParams with the operands); the oracle mirrors that order, so
/// deliberately inexact scales must still agree bit-for-bit.
TEST(Int8Gemm, RowMajorAllTransposes) {
  const std::uint64_t seed = test_seed(37);
  const index_t m = 29, n = 34, k = 77;
  const QuantParams qp{0.3f, 0.07f, 11, -23};  // (alpha*sa)*sb != (alpha*sb)*sa
  int idx = 0;
  for (Trans ta : {Trans::kNoTrans, Trans::kTrans}) {
    for (Trans tb : {Trans::kNoTrans, Trans::kTrans}) {
      const index_t ar = ta == Trans::kNoTrans ? m : k;
      const index_t ac = ta == Trans::kNoTrans ? k : m;
      const index_t br = tb == Trans::kNoTrans ? k : n;
      const index_t bc = tb == Trans::kNoTrans ? n : k;
      const index_t lda = ac + 2, ldb = bc + 1, ldc = n + 3;
      Matrix<std::int8_t> am = random_i8_matrix(index_t(ar * lda), 1,
                                                seed + idx);
      Matrix<std::int8_t> bm = random_i8_matrix(index_t(br * ldb), 1,
                                                seed + idx + 100);
      std::vector<float> c(std::size_t(m * ldc));
      Xoshiro256 rng(seed + idx + 200);
      for (float& v : c) v = float(rng.uniform() * 4.0 - 2.0);
      std::vector<float> want = c;
      naive_ref_gemm_i8(Layout::kRowMajor, ta, tb, m, n, k, -0.625f,
                        am.data(), lda, bm.data(), ldb, 0.5f, want.data(),
                        ldc, qp);
      std::vector<float> got = c;
      const FtReport rep =
          ft_gemm_i8(Layout::kRowMajor, ta, tb, m, n, k, -0.625f, am.data(),
                     lda, bm.data(), ldb, 0.5f, got.data(), ldc, qp);
      EXPECT_TRUE(rep.clean());
      EXPECT_EQ(rep.errors_detected, 0);
      std::vector<float> ori = c;
      gemm_i8(Layout::kRowMajor, ta, tb, m, n, k, -0.625f, am.data(), lda,
              bm.data(), ldb, 0.5f, ori.data(), ldc, qp);
      for (std::size_t e = 0; e < c.size(); ++e) {
        ASSERT_EQ(got[e], want[e])
            << "row-major ft elem " << e << seed_note(seed + idx);
        ASSERT_EQ(ori[e], want[e])
            << "row-major ori elem " << e << seed_note(seed + idx);
      }
      ++idx;
    }
  }
}

TEST(Int8Gemm, DegenerateCases) {
  const std::uint64_t seed = test_seed(41);
  // k == 0: nullptr operands are legal, C scales by beta exactly.
  for (float beta : {0.0f, 1.0f, 2.5f}) {
    Matrix<float> c(7, 9);
    c.fill_random(seed);
    Matrix<float> want = c.clone();
    naive_ref_gemm_i8(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, 7,
                      9, 0, 1.0f, nullptr, 1, nullptr, 1, beta, want.data(),
                      want.ld(), {});
    const FtReport rep = ft_gemm_i8(Layout::kColMajor, Trans::kNoTrans,
                                    Trans::kNoTrans, 7, 9, 0, 1.0f, nullptr,
                                    1, nullptr, 1, beta, c.data(), c.ld());
    EXPECT_FALSE(rep.invalid_args);
    EXPECT_EQ(rep.panels, 0);
    EXPECT_TRUE(rep.clean());
    expect_matrix_near(c, want, 0.0, "k=0 beta=" + std::to_string(beta));
  }
  // alpha == 0: operands unread, same beta-only contract.
  check_case(12, 13, 50, Trans::kNoTrans, Trans::kTrans, 0.0f, -1.5f,
             {0.1f, 0.2f, 1, 2}, seed + 1);
  // m == 0 / n == 0: silent no-op.
  I8Problem p(4, 4, 8, Trans::kNoTrans, Trans::kNoTrans, seed + 2);
  EXPECT_FALSE(ft_gemm_i8(Layout::kColMajor, Trans::kNoTrans,
                          Trans::kNoTrans, 0, 4, 8, 1.0f, p.a.data(),
                          p.a.ld(), p.b.data(), p.b.ld(), 1.0f, p.c.data(),
                          p.c.ld())
                   .invalid_args);
  // Negative dimension: invalid_args, C untouched.
  Matrix<float> before = p.c.clone();
  const FtReport bad = ft_gemm_i8(Layout::kColMajor, Trans::kNoTrans,
                                  Trans::kNoTrans, -1, 4, 8, 1.0f,
                                  p.a.data(), p.a.ld(), p.b.data(), p.b.ld(),
                                  1.0f, p.c.data(), p.c.ld());
  EXPECT_TRUE(bad.invalid_args);
  expect_matrix_near(p.c, before, 0.0, "invalid call touched C");
}

/// Integer accumulation is order-independent: any thread count and either
/// the fast or the general path must produce the very same bits.
TEST(Int8Gemm, ThreadCountsBitIdentical) {
  const std::uint64_t seed = test_seed(43);
  const index_t m = 150, n = 140, k = 700;
  const QuantParams qp{0.05f, 0.25f, 17, -9};
  I8Problem p(m, n, k, Trans::kNoTrans, Trans::kNoTrans, seed);
  Options one;
  one.threads = 1;
  Matrix<float> base = p.c.clone();
  const FtReport rep1 = ft_gemm_i8(Layout::kColMajor, Trans::kNoTrans,
                                   Trans::kNoTrans, m, n, k, 1.0f,
                                   p.a.data(), p.a.ld(), p.b.data(),
                                   p.b.ld(), 0.5f, base.data(), base.ld(),
                                   qp, one);
  EXPECT_TRUE(rep1.clean());
  for (int nt : {2, 4}) {
    Options opts;
    opts.threads = nt;
    Matrix<float> got = p.c.clone();
    const FtReport rep = ft_gemm_i8(Layout::kColMajor, Trans::kNoTrans,
                                    Trans::kNoTrans, m, n, k, 1.0f,
                                    p.a.data(), p.a.ld(), p.b.data(),
                                    p.b.ld(), 0.5f, got.data(), got.ld(), qp,
                                    opts);
    EXPECT_TRUE(rep.clean());
    EXPECT_EQ(rep.errors_detected, 0);
    expect_matrix_near(got, base, 0.0,
                       "threads=" + std::to_string(nt) + seed_note(seed));
    Matrix<float> ori = p.c.clone();
    gemm_i8(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, k,
            1.0f, p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), 0.5f,
            ori.data(), ori.ld(), qp, opts);
    expect_matrix_near(ori, base, 0.0,
                       "ori threads=" + std::to_string(nt) + seed_note(seed));
  }
}

/// The scalar kernels are the semantics reference: whatever ISA dispatch
/// picked natively must match them bit-for-bit (and both match the
/// oracle — checked via check_case on the scalar leg).
TEST(Int8Gemm, ForcedScalarIsaBitIdenticalToNative) {
  const std::uint64_t seed = test_seed(47);
  const index_t m = 67, n = 53, k = 320;
  const QuantParams qp{0.02f, 0.5f, -30, 90};
  Options scalar;
  scalar.isa = Isa::kScalar;
  check_case(m, n, k, Trans::kNoTrans, Trans::kNoTrans, 1.25f, 0.5f, qp,
             seed, scalar);
  I8Problem p(m, n, k, Trans::kTrans, Trans::kNoTrans, seed + 1);
  Matrix<float> native = p.c.clone(), forced = p.c.clone();
  ft_gemm_i8(Layout::kColMajor, Trans::kTrans, Trans::kNoTrans, m, n, k,
             1.25f, p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), 0.5f,
             native.data(), native.ld(), qp);
  ft_gemm_i8(Layout::kColMajor, Trans::kTrans, Trans::kNoTrans, m, n, k,
             1.25f, p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), 0.5f,
             forced.data(), forced.ld(), qp, scalar);
  expect_matrix_near(forced, native, 0.0,
                     "scalar vs native ISA" + seed_note(seed));
}

/// A planted strike is detected via the exact integer checksums, located,
/// and reversed exactly: the corrected C is bit-identical to a fault-free
/// run, and the correction log names the planted coordinates.
TEST(Int8Ft, DeterministicInjectionCorrectedExactly) {
  const std::uint64_t seed = test_seed(53);
  const index_t m = 96, n = 80, k = 300;
  const QuantParams qp{0.04f, 0.5f, 7, -3};
  I8Problem p(m, n, k, Trans::kNoTrans, Trans::kNoTrans, seed);
  Matrix<float> want = p.c.clone();
  naive_ref_gemm_i8(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m,
                    n, k, 1.0f, p.a.data(), p.a.ld(), p.b.data(), p.b.ld(),
                    0.5f, want.data(), want.ld(), qp);

  DeterministicInjector inj({
      {InjectionKind::kAddDelta, 0, 5, 7, 1000.0, 0},
      {InjectionKind::kAddDelta, 0, 40, 61, -3.5, 0},
      {InjectionKind::kFlipBit, 0, 17, 2, 0.0, 20},
  });
  std::vector<CorrectionRecord> log;
  Options opts;
  opts.injector = &inj;
  opts.correction_log = &log;
  Matrix<float> got = p.c.clone();
  const FtReport rep = ft_gemm_i8(Layout::kColMajor, Trans::kNoTrans,
                                  Trans::kNoTrans, m, n, k, 1.0f,
                                  p.a.data(), p.a.ld(), p.b.data(),
                                  p.b.ld(), 0.5f, got.data(), got.ld(), qp,
                                  opts);
  EXPECT_TRUE(rep.clean()) << seed_note(seed);
  EXPECT_GE(rep.errors_detected, 3);
  EXPECT_GE(rep.errors_corrected, 3);
  expect_matrix_near(got, want, 0.0, "corrected run" + seed_note(seed));
  ASSERT_GE(log.size(), 3u);
  bool hit_5_7 = false;
  for (const CorrectionRecord& r : log) {
    hit_5_7 = hit_5_7 || (r.i == 5 && r.j == 7);
  }
  EXPECT_TRUE(hit_5_7) << "planted (5, 7) strike missing from the log";
}

/// Paper-regime campaign: many random strikes per call, every one of them
/// reversed to bit-exactness (integer ABFT has no rounding residue to
/// hide behind).
TEST(Int8Ft, RandomInjectionCampaignBitExactWhenClean) {
  const std::uint64_t seed = test_seed(59);
  Xoshiro256 rng(seed);
  for (int iter = 0; iter < 6; ++iter) {
    const index_t m = 32 + index_t(rng.bounded(96));
    const index_t n = 32 + index_t(rng.bounded(96));
    const index_t k = 64 + index_t(rng.bounded(400));
    const QuantParams qp = random_quant_params(rng);
    I8Problem p(m, n, k, Trans::kNoTrans, Trans::kNoTrans, rng.next());
    Matrix<float> want = p.c.clone();
    naive_ref_gemm_i8(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m,
                      n, k, 0.5f, p.a.data(), p.a.ld(), p.b.data(),
                      p.b.ld(), 1.0f, want.data(), want.ld(), qp);
    CountInjector inj(int(1 + rng.bounded(8)), rng.next(), 500.0);
    Options opts;
    opts.injector = &inj;
    Matrix<float> got = p.c.clone();
    const FtReport rep = ft_gemm_i8(Layout::kColMajor, Trans::kNoTrans,
                                    Trans::kNoTrans, m, n, k, 0.5f,
                                    p.a.data(), p.a.ld(), p.b.data(),
                                    p.b.ld(), 1.0f, got.data(), got.ld(),
                                    qp, opts);
    EXPECT_GE(rep.errors_detected, 1) << seed_note(seed);
    if (rep.clean()) {
      expect_matrix_near(got, want, 0.0,
                         "iter " + std::to_string(iter) + seed_note(seed));
    }
  }
}

/// Resident-operand cache on the int8 path: the warm hit serves the raw
/// biased bytes and the rowchk side vector, and must be bit-identical to
/// the cold call; a memory strike on the cached panels is healed before
/// use (resident_verify) and still yields exact bits.
TEST(Int8Resident, HitsAreBitIdenticalAndHealsFlips) {
  clear_process_caches();
  const std::uint64_t seed = test_seed(61);
  const index_t m = 64, n = 50, k = 256;
  const QuantParams qp{0.03f, 0.2f, 5, -11};
  I8Problem p(m, n, k, Trans::kNoTrans, Trans::kNoTrans, seed);
  Matrix<float> want = p.c.clone();
  const FtReport cold = ft_gemm_i8(Layout::kColMajor, Trans::kNoTrans,
                                   Trans::kNoTrans, m, n, k, 2.0f,
                                   p.a.data(), p.a.ld(), p.b.data(),
                                   p.b.ld(), 0.5f, want.data(), want.ld(),
                                   qp);
  ASSERT_TRUE(cold.clean());

  Options res;
  res.resident_a = true;
  Matrix<float> first = p.c.clone();
  const FtReport miss = ft_gemm_i8(Layout::kColMajor, Trans::kNoTrans,
                                   Trans::kNoTrans, m, n, k, 2.0f,
                                   p.a.data(), p.a.ld(), p.b.data(),
                                   p.b.ld(), 0.5f, first.data(), first.ld(),
                                   qp, res);
  EXPECT_FALSE(miss.resident_hit);
  expect_matrix_near(first, want, 0.0, "resident miss" + seed_note(seed));

  Matrix<float> second = p.c.clone();
  const FtReport hit = ft_gemm_i8(Layout::kColMajor, Trans::kNoTrans,
                                  Trans::kNoTrans, m, n, k, 2.0f,
                                  p.a.data(), p.a.ld(), p.b.data(),
                                  p.b.ld(), 0.5f, second.data(),
                                  second.ld(), qp, res);
  EXPECT_TRUE(hit.resident_hit);
  EXPECT_EQ(hit.errors_detected, 0);
  expect_matrix_near(second, want, 0.0, "resident hit" + seed_note(seed));

  // The payload is QuantParams-independent: a different qp on the same
  // operand must still hit and still be exact against its own oracle.
  const QuantParams qp2{0.5f, 0.125f, -60, 42};
  Matrix<float> want2 = p.c.clone();
  naive_ref_gemm_i8(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m,
                    n, k, 2.0f, p.a.data(), p.a.ld(), p.b.data(), p.b.ld(),
                    0.5f, want2.data(), want2.ld(), qp2);
  Matrix<float> third = p.c.clone();
  const FtReport requant = ft_gemm_i8(Layout::kColMajor, Trans::kNoTrans,
                                      Trans::kNoTrans, m, n, k, 2.0f,
                                      p.a.data(), p.a.ld(), p.b.data(),
                                      p.b.ld(), 0.5f, third.data(),
                                      third.ld(), qp2, res);
  EXPECT_TRUE(requant.resident_hit);
  expect_matrix_near(third, want2, 0.0, "requantized hit" + seed_note(seed));

  // Strike the cached panels: CHECK_BEFORE must heal and stay exact.
  PanelBitFlipInjector flips(3, seed, /*bit=*/5);
  Options hurt = res;
  hurt.memory_injector = &flips;
  Matrix<float> healed = p.c.clone();
  const FtReport heal = ft_gemm_i8(Layout::kColMajor, Trans::kNoTrans,
                                   Trans::kNoTrans, m, n, k, 2.0f,
                                   p.a.data(), p.a.ld(), p.b.data(),
                                   p.b.ld(), 0.5f, healed.data(),
                                   healed.ld(), qp, hurt);
  EXPECT_TRUE(heal.resident_hit);
  // With FTGEMM_OPERAND_ECC (CI sanitize leg) some or all of the three
  // flips are swept in place instead of forcing a re-encode heal — either
  // defense must have fired, and the served result is exact regardless.
  EXPECT_GE(heal.resident_heals + std::int64_t(heal.resident_ecc_corrected),
            1);
  expect_matrix_near(healed, want, 0.0, "healed hit" + seed_note(seed));
}

TEST(Int8Resident, PrewarmHandleHitsFirstCall) {
  clear_process_caches();
  const std::uint64_t seed = test_seed(67);
  const index_t m = 40, n = 36, k = 200;
  I8Problem p(m, n, k, Trans::kNoTrans, Trans::kNoTrans, seed);
  const ResidentOperand handle = make_resident_a_i8(
      Trans::kNoTrans, Trans::kNoTrans, m, n, k, p.a.data(), p.a.ld());
  ASSERT_TRUE(handle.valid());
  EXPECT_GT(handle.bytes(), 0u);
  Options res;
  res.resident_a = true;
  Matrix<float> want = p.c.clone();
  ft_gemm_i8(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, k,
             1.0f, p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), 0.25f,
             want.data(), want.ld());
  Matrix<float> got = p.c.clone();
  const FtReport rep = ft_gemm_i8(Layout::kColMajor, Trans::kNoTrans,
                                  Trans::kNoTrans, m, n, k, 1.0f,
                                  p.a.data(), p.a.ld(), p.b.data(),
                                  p.b.ld(), 0.25f, got.data(), got.ld(), {},
                                  res);
  EXPECT_TRUE(rep.resident_hit) << "prewarm handle missed";
  expect_matrix_near(got, want, 0.0, "prewarmed" + seed_note(seed));
  // Deep problems yield no handle rather than a wrapping encode.
  EXPECT_FALSE(make_resident_a_i8(Trans::kNoTrans, Trans::kNoTrans, 1, 1,
                                  kI8MaxDepth + 1, p.a.data(), p.a.ld())
                   .valid());
}

TEST(Int8Engine, MatchesFreeFunctions) {
  const std::uint64_t seed = test_seed(71);
  const index_t m = 45, n = 38, k = 160;
  const QuantParams qp{0.1f, 0.4f, 2, 9};
  I8Problem p(m, n, k, Trans::kNoTrans, Trans::kTrans, seed);
  Matrix<float> want_ori = p.c.clone(), want_ft = p.c.clone();
  gemm_i8(Layout::kColMajor, Trans::kNoTrans, Trans::kTrans, m, n, k, 0.5f,
          p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), 1.0f, want_ori.data(),
          want_ori.ld(), qp);
  const FtReport want_rep = ft_gemm_i8(
      Layout::kColMajor, Trans::kNoTrans, Trans::kTrans, m, n, k, 0.5f,
      p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), 1.0f, want_ft.data(),
      want_ft.ld(), qp);

  GemmEngineI8 engine;
  Matrix<float> got_ori = p.c.clone(), got_ft = p.c.clone();
  engine.gemm(Layout::kColMajor, Trans::kNoTrans, Trans::kTrans, m, n, k,
              0.5f, p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), 1.0f,
              got_ori.data(), got_ori.ld(), qp);
  const FtReport rep = engine.ft_gemm(Layout::kColMajor, Trans::kNoTrans,
                                      Trans::kTrans, m, n, k, 0.5f,
                                      p.a.data(), p.a.ld(), p.b.data(),
                                      p.b.ld(), 1.0f, got_ft.data(),
                                      got_ft.ld(), qp);
  expect_matrix_near(got_ori, want_ori, 0.0, "engine ori" + seed_note(seed));
  expect_matrix_near(got_ft, want_ft, 0.0, "engine ft" + seed_note(seed));
  EXPECT_EQ(rep.panels, want_rep.panels);
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.errors_detected, 0);
}

/// Batched forms against a loop of single calls, across every scheduling
/// decision the dispatcher can take.
TEST(Int8Batched, StridedMatchesSinglesUnderEverySchedule) {
  const std::uint64_t seed = test_seed(73);
  const index_t m = 40, n = 30, k = 128, batch = 5;
  const index_t lda = m + 3, ldb = k + 1, ldc = m + 2;
  const index_t sa = lda * k, sb = ldb * n, sc = ldc * n;
  const QuantParams qp{0.05f, 0.5f, 4, -6};
  Xoshiro256 rng(seed);
  std::vector<std::int8_t> a(std::size_t(sa * batch)),
      b(std::size_t(sb * batch));
  for (auto& v : a) v = std::int8_t(std::int32_t(rng.bounded(256)) - 128);
  for (auto& v : b) v = std::int8_t(std::int32_t(rng.bounded(256)) - 128);
  std::vector<float> c0(std::size_t(sc * batch));
  for (float& v : c0) v = float(rng.uniform() * 2.0 - 1.0);

  // Singles oracle (already bit-exact vs naive per the suites above).
  std::vector<float> want = c0;
  for (index_t p = 0; p < batch; ++p) {
    gemm_i8(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, k,
            1.5f, a.data() + p * sa, lda, b.data() + p * sb, ldb, 0.5f,
            want.data() + p * sc, ldc, qp);
  }

  for (BatchSchedule sched : {BatchSchedule::kAuto, BatchSchedule::kIntra,
                              BatchSchedule::kInter}) {
    BatchOptions bopts;
    bopts.schedule = sched;
    std::vector<float> got = c0;
    const BatchReport rep = ft_gemm_i8_strided_batched(
        Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, k, 1.5f,
        a.data(), lda, sa, b.data(), ldb, sb, 0.5f, got.data(), ldc, sc,
        batch, qp, bopts);
    EXPECT_FALSE(rep.invalid_args);
    EXPECT_EQ(rep.problems, batch);
    EXPECT_TRUE(rep.clean());
    EXPECT_EQ(rep.errors_detected, 0);
    ASSERT_EQ(rep.per_problem.size(), std::size_t(batch));
    for (std::size_t e = 0; e < want.size(); ++e) {
      ASSERT_EQ(got[e], want[e])
          << "ft strided sched=" << int(sched) << " elem " << e
          << seed_note(seed);
    }
    std::vector<float> ori = c0;
    const BatchReport orep = gemm_i8_strided_batched(
        Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, k, 1.5f,
        a.data(), lda, sa, b.data(), ldb, sb, 0.5f, ori.data(), ldc, sc,
        batch, qp, bopts);
    EXPECT_EQ(orep.problems, batch);
    for (std::size_t e = 0; e < want.size(); ++e) {
      ASSERT_EQ(ori[e], want[e])
          << "ori strided sched=" << int(sched) << " elem " << e
          << seed_note(seed);
    }
  }

  // Pointer-array form, plus a per-member injection through the batch
  // options: only the targeted member is faulty, all members end exact.
  std::vector<const std::int8_t*> ap, bp;
  std::vector<float> got = c0;
  std::vector<float*> cp;
  for (index_t p = 0; p < batch; ++p) {
    ap.push_back(a.data() + p * sa);
    bp.push_back(b.data() + p * sb);
    cp.push_back(got.data() + p * sc);
  }
  DeterministicInjector inj({{InjectionKind::kAddDelta, 0, 3, 4, 77.0, 0}});
  BatchOptions bopts;
  bopts.base.injector = &inj;
  bopts.inject_problem = 2;
  const BatchReport rep = ft_gemm_i8_batched(
      Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, k, 1.5f,
      ap.data(), lda, bp.data(), ldb, 0.5f, cp.data(), ldc, batch, qp,
      bopts);
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.faulty_problems, 1);
  ASSERT_EQ(rep.per_problem.size(), std::size_t(batch));
  EXPECT_GE(rep.per_problem[2].errors_detected, 1);
  for (std::size_t e = 0; e < want.size(); ++e) {
    ASSERT_EQ(got[e], want[e])
        << "injected batch elem " << e << seed_note(seed);
  }
  // The deep-k rejection also covers the batched forms.
  EXPECT_TRUE(ft_gemm_i8_strided_batched(
                  Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, 1, 1,
                  kI8MaxDepth + 1, 1.0f, a.data(), 1, 0, b.data(),
                  kI8MaxDepth + 1, 0, 0.0f, got.data(), 1, 0, 1, qp)
                  .invalid_args);
}

/// Serving layer: Precision::kI8 requests through direct dispatch and the
/// coalesced window deliver the synchronous entry points' exact bits, and
/// only same-QuantParams requests merge (differing qp members must still
/// each be exact under their own qp).
TEST(Int8Service, DirectAndCoalescedBitExact) {
  const std::uint64_t seed = test_seed(79);
  const index_t m = 24, n = 20, k = 64;
  const QuantParams qp{0.05f, 0.25f, 2, -3};
  const QuantParams qp2{0.5f, 0.5f, -20, 40};
  I8Problem p(m, n, k, Trans::kNoTrans, Trans::kNoTrans, seed);
  Matrix<float> sync_ft = p.c.clone(), sync_qp2 = p.c.clone();
  ft_gemm_i8(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, k,
             1.0f, p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), 0.5f,
             sync_ft.data(), sync_ft.ld(), qp);
  ft_gemm_i8(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, k,
             1.0f, p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), 0.5f,
             sync_qp2.data(), sync_qp2.ld(), qp2);

  serve::GemmService service;
  {
    Matrix<float> c = p.c.clone();
    const serve::GemmResult res =
        service
            .submit(serve::make_gemm_request_i8(
                true, Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m,
                n, k, 1.0f, p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), 0.5f,
                c.data(), c.ld(), qp))
            .wait();
    ASSERT_EQ(res.status, serve::RequestStatus::kDone);
    EXPECT_TRUE(res.ok());
    EXPECT_TRUE(res.report.clean());
    expect_matrix_near(c, sync_ft, 0.0, "service direct" + seed_note(seed));
  }
  {
    // A window of same-shape requests — six under qp, two under qp2.  The
    // shard may merge the qp run into one batched call but must never
    // merge across the qp boundary; every result is bit-exact either way.
    std::vector<Matrix<float>> cs;
    for (int r = 0; r < 8; ++r) cs.push_back(p.c.clone());
    std::vector<serve::GemmRequest> reqs;
    for (int r = 0; r < 8; ++r) {
      reqs.push_back(serve::make_gemm_request_i8(
          true, Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, k,
          1.0f, p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), 0.5f,
          cs[std::size_t(r)].data(), cs[std::size_t(r)].ld(),
          r < 6 ? qp : qp2));
    }
    std::vector<serve::GemmFuture> futs = service.submit_all(reqs);
    for (int r = 0; r < 8; ++r) {
      const serve::GemmResult res = futs[std::size_t(r)].wait();
      ASSERT_EQ(res.status, serve::RequestStatus::kDone) << r;
      EXPECT_TRUE(res.report.clean()) << r;
      expect_matrix_near(cs[std::size_t(r)], r < 6 ? sync_ft : sync_qp2, 0.0,
                         "window member " + std::to_string(r) +
                             seed_note(seed));
    }
  }
  {
    // Strided-batched request routes direct.
    const index_t batch = 3;
    const index_t sc = p.c.ld() * n;
    std::vector<float> got(std::size_t(sc * batch));
    std::vector<float> want(std::size_t(sc * batch));
    for (index_t bi = 0; bi < batch; ++bi) {
      for (index_t e = 0; e < sc; ++e) {
        got[std::size_t(bi * sc + e)] = p.c.data()[e];
        want[std::size_t(bi * sc + e)] = sync_ft.data()[e];
      }
    }
    const serve::GemmResult res =
        service
            .submit(serve::make_strided_batched_request_i8(
                true, Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m,
                n, k, 1.0f, p.a.data(), p.a.ld(), 0, p.b.data(), p.b.ld(), 0,
                0.5f, got.data(), p.c.ld(), sc, batch, qp))
            .wait();
    ASSERT_EQ(res.status, serve::RequestStatus::kDone);
    EXPECT_EQ(res.batch.problems, batch);
    EXPECT_TRUE(res.batch.clean());
    for (std::size_t e = 0; e < want.size(); ++e) {
      ASSERT_EQ(got[e], want[e]) << "service batch elem " << e;
    }
  }
  {
    // Depth guard holds at admission: the request is rejected, not run.
    Matrix<float> c = p.c.clone();
    const serve::GemmResult res =
        service
            .submit(serve::make_gemm_request_i8(
                true, Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, 1,
                1, kI8MaxDepth + 1, 1.0f, p.a.data(), 1, p.b.data(),
                kI8MaxDepth + 1, 0.0f, c.data(), c.ld(), qp))
            .wait();
    EXPECT_EQ(res.status, serve::RequestStatus::kRejected);
  }
  service.shutdown();
}

}  // namespace
}  // namespace ftgemm
