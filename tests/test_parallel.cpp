// Parallel FT-GEMM tests (§2.3): the same driver with threads > 1 must
// produce correct results, preserve FT guarantees, and partition work
// per the shared-B~/private-A~ scheme.  On a single-core CI machine the
// threads oversubscribe, which still exercises every synchronization path.
#include <gtest/gtest.h>

#include "inject/injectors.hpp"
#include "test_common.hpp"

namespace ftgemm {
namespace {

using testing::GemmCase;
using testing::Problem;
using testing::expect_matrix_near;
using testing::gemm_tolerance;
using testing::reference_result;

class ParallelSweep
    : public ::testing::TestWithParam<std::tuple<int, GemmCase>> {};

TEST_P(ParallelSweep, OriMatchesOracle) {
  const auto [threads, cs] = GetParam();
  Problem<double> p(cs);
  const Matrix<double> ref = reference_result(cs, p);
  Matrix<double> c = p.c.clone();
  Options opts;
  opts.threads = threads;
  dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
        p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), cs.beta, c.data(), c.ld(),
        opts);
  expect_matrix_near(c, ref, gemm_tolerance<double>(cs.k),
                     "threads=" + std::to_string(threads) + " " + cs.name());
}

TEST_P(ParallelSweep, FtCleanAndMatchesOracle) {
  const auto [threads, cs] = GetParam();
  Problem<double> p(cs);
  const Matrix<double> ref = reference_result(cs, p);
  Matrix<double> c = p.c.clone();
  Options opts;
  opts.threads = threads;
  const FtReport rep = ft_dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n,
                                cs.k, cs.alpha, p.a.data(), p.a.ld(),
                                p.b.data(), p.b.ld(), cs.beta, c.data(),
                                c.ld(), opts);
  EXPECT_TRUE(rep.clean()) << "threads=" << threads << " " << cs;
  EXPECT_EQ(rep.errors_detected, 0);
  expect_matrix_near(c, ref, gemm_tolerance<double>(cs.k),
                     "threads=" + std::to_string(threads) + " " + cs.name());
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsTimesShapes, ParallelSweep,
    ::testing::Combine(
        ::testing::Values(2, 3, 4),
        ::testing::Values(GemmCase{128, 96, 300},
                          GemmCase{97, 203, 129},
                          // fewer M-rows than threads*MR: some threads idle
                          GemmCase{17, 64, 64},
                          GemmCase{256, 32, 512, Trans::kTrans,
                                   Trans::kNoTrans},
                          GemmCase{64, 64, 64, Trans::kNoTrans,
                                   Trans::kTrans, -1.5, 2.0})),
    [](const auto& info) {
      return "t" + std::to_string(std::get<0>(info.param)) + "_" +
             GemmCase(std::get<1>(info.param)).name();
    });

TEST(ParallelFt, InjectionCorrectedAcrossThreadBoundaries) {
  // Errors in different threads' row partitions, same panel: the Cr
  // reduction and the single-threaded solve must see all of them.
  const GemmCase cs{128, 128, 128};
  Problem<double> p(cs);
  const Matrix<double> ref = reference_result(cs, p);
  Matrix<double> c = p.c.clone();
  DeterministicInjector inj({
      {InjectionKind::kAddDelta, 0, 5, 100, 2.0, 0},    // thread 0 rows
      {InjectionKind::kAddDelta, 0, 120, 3, -7.0, 0},   // last thread rows
  });
  Options opts;
  opts.threads = 4;
  opts.injector = &inj;
  const FtReport rep = ft_dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n,
                                cs.k, cs.alpha, p.a.data(), p.a.ld(),
                                p.b.data(), p.b.ld(), cs.beta, c.data(),
                                c.ld(), opts);
  EXPECT_EQ(static_cast<std::size_t>(rep.errors_corrected), inj.injected_count());
  EXPECT_TRUE(rep.clean());
  expect_matrix_near(c, ref, gemm_tolerance<double>(cs.k), "corrected C");
}

TEST(ParallelFt, TwentyRandomErrorsWithFourThreads) {
  const GemmCase cs{192, 160, 384};
  CountInjector inj(20, 2024, 5.0);
  Problem<double> p(cs);
  const Matrix<double> ref = reference_result(cs, p);
  Matrix<double> c = p.c.clone();
  Options opts;
  opts.threads = 4;
  opts.injector = &inj;
  const FtReport rep = ft_dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n,
                                cs.k, cs.alpha, p.a.data(), p.a.ld(),
                                p.b.data(), p.b.ld(), cs.beta, c.data(),
                                c.ld(), opts);
  EXPECT_EQ(inj.injected_count(), 20u);
  EXPECT_TRUE(rep.clean());
  expect_matrix_near(c, ref, gemm_tolerance<double>(cs.k), "corrected C");
}

TEST(ParallelFt, ResultsIdenticalAcrossThreadCounts) {
  // The M-partition changes which kernel instance computes each row, but
  // every row's FMA sequence is identical -> results must match bitwise.
  const GemmCase cs{160, 96, 320};
  Problem<double> p(cs);
  Matrix<double> c1 = p.c.clone();
  Matrix<double> c4 = p.c.clone();
  Options o1, o4;
  o1.threads = 1;
  o4.threads = 4;
  ft_dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
           p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), cs.beta, c1.data(),
           c1.ld(), o1);
  ft_dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
           p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), cs.beta, c4.data(),
           c4.ld(), o4);
  expect_matrix_near(c1, c4, 0.0, "1 vs 4 threads");
}

TEST(ParallelFt, MoreThreadsThanRowTiles) {
  // 8 threads, one MR tile of rows: most threads have empty M-partitions
  // yet still participate in packing and barriers.
  const GemmCase cs{16, 128, 256};
  Problem<double> p(cs);
  const Matrix<double> ref = reference_result(cs, p);
  Matrix<double> c = p.c.clone();
  Options opts;
  opts.threads = 8;
  const FtReport rep = ft_dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n,
                                cs.k, cs.alpha, p.a.data(), p.a.ld(),
                                p.b.data(), p.b.ld(), cs.beta, c.data(),
                                c.ld(), opts);
  EXPECT_TRUE(rep.clean());
  expect_matrix_near(c, ref, gemm_tolerance<double>(cs.k), "idle threads");
}

}  // namespace
}  // namespace ftgemm
