// Unit tests: CPU feature detection and ISA dispatch policy.
#include <gtest/gtest.h>

#include <cstdlib>

#include "arch/cpu_features.hpp"
#include "arch/isa.hpp"

namespace ftgemm {
namespace {

TEST(CpuFeatures, DetectionIsStable) {
  const CpuFeatures& a = cpu_features();
  const CpuFeatures& b = cpu_features();
  EXPECT_EQ(&a, &b) << "detection must be cached";
}

TEST(CpuFeatures, Avx512ImpliesAvx2Support) {
  const CpuFeatures& f = cpu_features();
  if (f.has_avx512_kernel_support()) {
    EXPECT_TRUE(f.has_avx2_kernel_support())
        << "no real CPU has AVX-512 without AVX2+FMA";
  }
}

TEST(CpuFeatures, FeatureStringNonEmpty) {
  EXPECT_FALSE(cpu_feature_string().empty());
}

TEST(Isa, ParseRoundTrips) {
  EXPECT_EQ(parse_isa("avx512"), Isa::kAvx512);
  EXPECT_EQ(parse_isa("avx2"), Isa::kAvx2);
  EXPECT_EQ(parse_isa("scalar"), Isa::kScalar);
  EXPECT_EQ(parse_isa("nonsense"), Isa::kScalar);
  EXPECT_EQ(parse_isa(isa_name(Isa::kAvx512)), Isa::kAvx512);
  EXPECT_EQ(parse_isa(isa_name(Isa::kAvx2)), Isa::kAvx2);
  EXPECT_EQ(parse_isa(isa_name(Isa::kScalar)), Isa::kScalar);
}

TEST(Isa, SelectNeverExceedsHardware) {
  const Isa best = select_isa();
  const CpuFeatures& f = cpu_features();
  if (best == Isa::kAvx512) {
    EXPECT_TRUE(f.has_avx512_kernel_support());
  }
  if (best == Isa::kAvx2) {
    EXPECT_TRUE(f.has_avx2_kernel_support());
  }
}

TEST(Isa, EnvOverrideDowngrades) {
  ::setenv("FTGEMM_ISA", "scalar", 1);
  EXPECT_EQ(select_isa(), Isa::kScalar);
  ::setenv("FTGEMM_ISA", "avx2", 1);
  const Isa got = select_isa();
  if (cpu_features().has_avx2_kernel_support()) {
    EXPECT_EQ(got, Isa::kAvx2);
  } else {
    EXPECT_EQ(got, Isa::kScalar);
  }
  ::unsetenv("FTGEMM_ISA");
}

TEST(Isa, EnvOverrideCannotUpgradeBeyondHardware) {
  ::setenv("FTGEMM_ISA", "avx512", 1);
  const Isa got = select_isa();
  if (!cpu_features().has_avx512_kernel_support()) {
    EXPECT_NE(got, Isa::kAvx512);
  }
  ::unsetenv("FTGEMM_ISA");
}

}  // namespace
}  // namespace ftgemm
