// Unit tests: CPU feature detection and ISA dispatch policy.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "arch/cpu_features.hpp"
#include "arch/isa.hpp"

namespace ftgemm {
namespace {

TEST(CpuFeatures, DetectionIsStable) {
  const CpuFeatures& a = cpu_features();
  const CpuFeatures& b = cpu_features();
  EXPECT_EQ(&a, &b) << "detection must be cached";
}

TEST(CpuFeatures, Avx512ImpliesAvx2Support) {
  const CpuFeatures& f = cpu_features();
  if (f.has_avx512_kernel_support()) {
    EXPECT_TRUE(f.has_avx2_kernel_support())
        << "no real CPU has AVX-512 without AVX2+FMA";
  }
}

TEST(CpuFeatures, FeatureStringNonEmpty) {
  EXPECT_FALSE(cpu_feature_string().empty());
}

TEST(Isa, ParseRoundTrips) {
  EXPECT_EQ(parse_isa("avx512"), Isa::kAvx512);
  EXPECT_EQ(parse_isa("avx2"), Isa::kAvx2);
  EXPECT_EQ(parse_isa("scalar"), Isa::kScalar);
  EXPECT_EQ(parse_isa("nonsense"), Isa::kScalar);
  EXPECT_EQ(parse_isa(isa_name(Isa::kAvx512)), Isa::kAvx512);
  EXPECT_EQ(parse_isa(isa_name(Isa::kAvx2)), Isa::kAvx2);
  EXPECT_EQ(parse_isa(isa_name(Isa::kScalar)), Isa::kScalar);
}

TEST(Isa, SelectNeverExceedsHardware) {
  const Isa best = select_isa();
  const CpuFeatures& f = cpu_features();
  if (best == Isa::kAvx512) {
    EXPECT_TRUE(f.has_avx512_kernel_support());
  }
  if (best == Isa::kAvx2) {
    EXPECT_TRUE(f.has_avx2_kernel_support());
  }
}

// The Isa.EnvOverride* tests probe the env-var policy itself, so they must
// neutralize any FTGEMM_FORCE_ISA inherited from the outer environment
// (the CI scalar-fallback leg exports it for the whole ctest run; it wins
// over FTGEMM_ISA by design) — and restore it afterwards so the rest of
// this binary still runs under the leg's forced ISA.
class ForceIsaScope {
 public:
  ForceIsaScope() {
    if (const char* v = std::getenv("FTGEMM_FORCE_ISA")) {
      saved_ = v;
      ::unsetenv("FTGEMM_FORCE_ISA");
    }
  }
  ~ForceIsaScope() {
    if (!saved_.empty()) ::setenv("FTGEMM_FORCE_ISA", saved_.c_str(), 1);
  }

 private:
  std::string saved_;
};

TEST(Isa, EnvOverrideDowngrades) {
  ForceIsaScope no_force;
  ::setenv("FTGEMM_ISA", "scalar", 1);
  EXPECT_EQ(select_isa(), Isa::kScalar);
  ::setenv("FTGEMM_ISA", "avx2", 1);
  const Isa got = select_isa();
  if (cpu_features().has_avx2_kernel_support()) {
    EXPECT_EQ(got, Isa::kAvx2);
  } else {
    EXPECT_EQ(got, Isa::kScalar);
  }
  ::unsetenv("FTGEMM_ISA");
}

TEST(Isa, EnvOverrideCannotUpgradeBeyondHardware) {
  ForceIsaScope no_force;
  ::setenv("FTGEMM_ISA", "avx512", 1);
  const Isa got = select_isa();
  if (!cpu_features().has_avx512_kernel_support()) {
    EXPECT_NE(got, Isa::kAvx512);
  }
  ::unsetenv("FTGEMM_ISA");
}

TEST(Isa, ForceIsaWinsOverHistoricalOverride) {
  ForceIsaScope no_force;
  ::setenv("FTGEMM_FORCE_ISA", "scalar", 1);
  ::setenv("FTGEMM_ISA", "avx2", 1);
  EXPECT_EQ(select_isa(), Isa::kScalar)
      << "FTGEMM_FORCE_ISA must take precedence over FTGEMM_ISA";
  ::unsetenv("FTGEMM_ISA");
  ::unsetenv("FTGEMM_FORCE_ISA");
}

}  // namespace
}  // namespace ftgemm
