// Fault-injection tests: the heart of the reproduction.
//
// Property under test (§3.2): with online ABFT operating, injected compute
// errors are detected at the end of their rank-KC panel, located by the
// row/column mismatch intersection, and corrected — the final C equals the
// fault-free result to rounding error.
#include <gtest/gtest.h>

#include <cmath>

#include "blocking/plan.hpp"
#include "inject/injectors.hpp"
#include "test_common.hpp"

namespace ftgemm {
namespace {

using testing::GemmCase;
using testing::Problem;
using testing::gemm_tolerance;
using testing::reference_result;

/// Run ft_dgemm under a given injector and return (report, result-vs-ref).
struct InjectionRun {
  FtReport report;
  double rel_err;
  std::size_t injected;
};

InjectionRun run_with_injector(const GemmCase& cs, FaultInjector& inj,
                               std::uint64_t seed = 7,
                               bool paranoid = false) {
  Problem<double> p(cs, seed);
  const Matrix<double> ref = reference_result(cs, p);
  Matrix<double> c = p.c.clone();
  Options opts;
  opts.injector = &inj;
  opts.paranoid_recheck = paranoid;
  InjectionRun out;
  out.report = ft_dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k,
                        cs.alpha, p.a.data(), p.a.ld(), p.b.data(), p.b.ld(),
                        cs.beta, c.data(), c.ld(), opts);
  out.rel_err = max_rel_diff(c, ref);
  out.injected = inj.injected_count();
  return out;
}

// ---------------------------------------------------------------------------
// Exhaustive single-error property sweep: an error in any panel, any
// quadrant of C, positive or negative, large or small-but-above-threshold,
// must be corrected exactly.
// ---------------------------------------------------------------------------

class SingleErrorSweep
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(SingleErrorSweep, DetectedLocatedCorrected) {
  const auto [panel, corner, delta] = GetParam();
  const GemmCase cs{130, 120, 600};  // KC=256ish -> >= 2 panels, edge tiles
  const BlockingPlan plan = make_plan(select_isa(), 8);
  const int num_panels = int((cs.k + plan.kc - 1) / plan.kc);
  if (panel >= num_panels) GTEST_SKIP() << "plan has fewer panels";

  const index_t i = corner % 2 == 0 ? 3 : cs.m - 2;
  const index_t j = corner / 2 == 0 ? 5 : cs.n - 3;
  DeterministicInjector inj({{InjectionKind::kAddDelta, panel, i, j, delta, 0}});

  const InjectionRun run = run_with_injector(cs, inj);
  EXPECT_EQ(run.injected, 1u);
  EXPECT_EQ(inj.undelivered_count(), 0u) << "schedule must be ground truth";
  EXPECT_EQ(run.report.errors_detected, 1);
  EXPECT_EQ(run.report.errors_corrected, 1);
  EXPECT_TRUE(run.report.clean());
  // ABFT correction recovers the element to checksum rounding accuracy,
  // which scales with the *injected* magnitude (the delta estimate is a
  // difference of sums containing the corrupted value).
  const double corr_tol =
      std::max(gemm_tolerance<double>(cs.k),
               1e-12 * std::max(1.0, std::abs(delta)));
  EXPECT_LE(run.rel_err, corr_tol);
}

INSTANTIATE_TEST_SUITE_P(
    PanelsCornersDeltas, SingleErrorSweep,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(0, 1, 2, 3),
                       ::testing::Values(1.0, -1.0, 1e6, -1e-4, 1e-6)),
    [](const auto& info) {
      const double delta = std::get<2>(info.param);
      std::string d = std::to_string(int(std::log10(std::abs(delta))));
      for (char& ch : d)
        if (ch == '-') ch = 'm';
      return "panel" + std::to_string(std::get<0>(info.param)) + "_corner" +
             std::to_string(std::get<1>(info.param)) +
             (delta > 0 ? "_pos" : "_neg") + "_e" + d;
    });

// ---------------------------------------------------------------------------
// Multi-error patterns within one panel.
// ---------------------------------------------------------------------------

TEST(MultiError, DistinctRowsAndColumns) {
  const GemmCase cs{96, 96, 96};
  DeterministicInjector inj({
      {InjectionKind::kAddDelta, 0, 10, 20, 2.0, 0},
      {InjectionKind::kAddDelta, 0, 30, 40, -3.0, 0},
      {InjectionKind::kAddDelta, 0, 50, 60, 0.5, 0},
  });
  const InjectionRun run = run_with_injector(cs, inj);
  EXPECT_EQ(inj.undelivered_count(), 0u) << "schedule must be ground truth";
  EXPECT_EQ(run.report.errors_corrected, 3);
  EXPECT_TRUE(run.report.clean());
  EXPECT_LE(run.rel_err, gemm_tolerance<double>(cs.k));
}

TEST(MultiError, BurstInOneRow) {
  // A corrupted packed-A element manifests as several errors in one row.
  const GemmCase cs{64, 64, 64};
  DeterministicInjector inj({
      {InjectionKind::kAddDelta, 0, 7, 3, 1.0, 0},
      {InjectionKind::kAddDelta, 0, 7, 12, 2.0, 0},
      {InjectionKind::kAddDelta, 0, 7, 40, -4.0, 0},
  });
  const InjectionRun run = run_with_injector(cs, inj);
  EXPECT_EQ(inj.undelivered_count(), 0u) << "schedule must be ground truth";
  EXPECT_EQ(run.report.errors_corrected, 3);
  EXPECT_TRUE(run.report.clean());
  EXPECT_LE(run.rel_err, gemm_tolerance<double>(cs.k));
}

TEST(MultiError, BurstInOneColumn) {
  const GemmCase cs{64, 64, 64};
  DeterministicInjector inj({
      {InjectionKind::kAddDelta, 0, 3, 9, 1.5, 0},
      {InjectionKind::kAddDelta, 0, 21, 9, -2.5, 0},
      {InjectionKind::kAddDelta, 0, 45, 9, 8.0, 0},
  });
  const InjectionRun run = run_with_injector(cs, inj);
  EXPECT_EQ(inj.undelivered_count(), 0u) << "schedule must be ground truth";
  EXPECT_EQ(run.report.errors_corrected, 3);
  EXPECT_TRUE(run.report.clean());
  EXPECT_LE(run.rel_err, gemm_tolerance<double>(cs.k));
}

TEST(MultiError, ErrorsInDifferentPanelsAreIndependent) {
  const GemmCase cs{80, 80, 600};
  DeterministicInjector inj({
      {InjectionKind::kAddDelta, 0, 5, 5, 1.0, 0},
      {InjectionKind::kAddDelta, 1, 6, 6, -2.0, 0},
      {InjectionKind::kAddDelta, 2, 7, 7, 3.0, 0},
  });
  const BlockingPlan plan = make_plan(select_isa(), 8);
  const int num_panels = int((cs.k + plan.kc - 1) / plan.kc);
  if (num_panels < 3) GTEST_SKIP();
  const InjectionRun run = run_with_injector(cs, inj);
  EXPECT_EQ(inj.undelivered_count(), 0u) << "schedule must be ground truth";
  EXPECT_EQ(run.report.errors_corrected, 3);
  EXPECT_TRUE(run.report.clean());
  EXPECT_LE(run.rel_err, gemm_tolerance<double>(cs.k));
}

TEST(MultiError, SameElementTwiceInOnePanelMergesIntoOneCorrection) {
  const GemmCase cs{64, 64, 64};
  DeterministicInjector inj({
      {InjectionKind::kAddDelta, 0, 11, 13, 1.0, 0},
      {InjectionKind::kAddDelta, 0, 11, 13, 2.0, 0},
  });
  const InjectionRun run = run_with_injector(cs, inj);
  EXPECT_EQ(inj.undelivered_count(), 0u);
  // The two deltas sum in both checksums: one located error of +3.
  EXPECT_EQ(run.report.errors_corrected, 1);
  EXPECT_TRUE(run.report.clean());
  EXPECT_LE(run.rel_err, gemm_tolerance<double>(cs.k));
}

TEST(MultiError, CancellingPairInRowIsAtLeastDetected) {
  // +d and -d in the same row cancel in Cc but not in Cr: the locator
  // cannot close the assignment, so the panel must be flagged
  // uncorrectable — silent corruption is the one forbidden outcome.
  const GemmCase cs{64, 64, 64};
  DeterministicInjector inj({
      {InjectionKind::kAddDelta, 0, 9, 10, 5.0, 0},
      {InjectionKind::kAddDelta, 0, 9, 30, -5.0, 0},
  });
  const InjectionRun run = run_with_injector(cs, inj);
  EXPECT_EQ(inj.undelivered_count(), 0u);
  EXPECT_EQ(run.report.uncorrectable_panels, 1);
  EXPECT_FALSE(run.report.clean());
}

TEST(MultiError, OutOfGeometryScheduleEntriesAreCountedUndelivered) {
  // A record whose panel lies beyond the problem's panel count can never be
  // delivered; pre-fix it was silently skipped, making injected_count an
  // overstatement of ground truth.  undelivered_count must expose it.
  const GemmCase cs{64, 64, 64};
  DeterministicInjector inj({
      {InjectionKind::kAddDelta, 0, 9, 10, 5.0, 0},
      {InjectionKind::kAddDelta, 99, 9, 30, -5.0, 0},  // no such panel
  });
  const InjectionRun run = run_with_injector(cs, inj);
  EXPECT_EQ(inj.undelivered_count(), 1u);
  EXPECT_EQ(run.report.errors_corrected, 1);
  EXPECT_TRUE(run.report.clean());
}

// ---------------------------------------------------------------------------
// Bit-flip fault model.
// ---------------------------------------------------------------------------

class BitflipSweep : public ::testing::TestWithParam<int> {};

TEST_P(BitflipSweep, HighBitsCorrected) {
  const int bit = GetParam();
  const GemmCase cs{64, 64, 64};
  DeterministicInjector inj(
      {{InjectionKind::kFlipBit, 0, 17, 23, 0.0, bit}});
  const InjectionRun run = run_with_injector(cs, inj);
  ASSERT_EQ(run.injected, 1u);
  const double applied = std::abs(inj.log()[0].delta);
  if (applied > 1e-4) {
    EXPECT_EQ(run.report.errors_corrected, 1) << "bit " << bit;
    EXPECT_TRUE(run.report.clean());
  }
  // Whether corrected (large flip, converged via the exact-recheck rounds)
  // or below threshold (low mantissa bit, numerically harmless by the
  // tolerance argument), the result must stay near the reference.
  EXPECT_LE(run.rel_err, std::max(gemm_tolerance<double>(cs.k), 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Bits, BitflipSweep,
                         ::testing::Values(62, 60, 55, 52, 40, 30),
                         [](const auto& info) {
                           return "bit" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Stochastic injectors.
// ---------------------------------------------------------------------------

TEST(CountInjectorTest, TwentyErrorsPerRunAllCorrected) {
  // The paper's Fig 2(c) regime: 20 injected errors per multiplication.
  const GemmCase cs{256, 256, 512};
  CountInjector inj(20, 4242, 3.0);
  const InjectionRun run = run_with_injector(cs, inj);
  EXPECT_EQ(run.injected, 20u);
  EXPECT_EQ(inj.undelivered_count(), 0u)
      << "every scheduled error must have landed in an executed block";
  EXPECT_TRUE(run.report.clean());
  EXPECT_GE(run.report.errors_corrected, 18)
      << "collisions may merge corrections, but nearly all are distinct";
  EXPECT_LE(run.rel_err, gemm_tolerance<double>(cs.k));
}

TEST(CountInjectorTest, RepeatedCallsUseFreshSchedules) {
  CountInjector inj(4, 1, 1.0);
  const GemmCase cs{64, 64, 64};
  const InjectionRun r1 = run_with_injector(cs, inj);
  inj.clear_log();
  const InjectionRun r2 = run_with_injector(cs, inj);
  EXPECT_TRUE(r1.report.clean());
  EXPECT_TRUE(r2.report.clean());
}

TEST(RateInjectorTest, InjectsRoughlyAtConfiguredRate) {
  // A very high rate guarantees injections even on a fast machine.  The
  // wall-clock rate is load-dependent: on a contended CI core the call runs
  // long enough to pile more errors into one panel than the locator can
  // disambiguate.  The library's contract for that regime is *flagged, not
  // silent* — an unclean report excuses an off result, a clean report never
  // does (ft_dgemm_reliable exists to retry flagged runs).
  const GemmCase cs{192, 192, 512};
  RateInjector inj(/*errors_per_minute=*/60.0 * 1e4, 7, 2.0);
  const InjectionRun run = run_with_injector(cs, inj);
  EXPECT_GT(run.injected, 0u) << "rate injector should have fired";
  if (run.report.clean()) {
    EXPECT_LE(run.rel_err, gemm_tolerance<double>(cs.k))
        << "clean report must mean a correct result";
  } else {
    EXPECT_GT(run.report.uncorrectable_panels, 0)
        << "unclean report must say which panels failed";
  }
}

// ---------------------------------------------------------------------------
// Failure modes and recovery paths.
// ---------------------------------------------------------------------------

TEST(OriUnderInjection, SilentlyCorrupts) {
  // Sanity check of the experiment design: without FT the same injection
  // visibly corrupts the result.
  const GemmCase cs{96, 96, 96};
  Problem<double> p(cs);
  const Matrix<double> ref = reference_result(cs, p);
  Matrix<double> c = p.c.clone();
  DeterministicInjector inj({{InjectionKind::kAddDelta, 0, 1, 1, 100.0, 0}});
  Options opts;
  opts.injector = &inj;
  dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
        p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), cs.beta, c.data(),
        c.ld(), opts);
  EXPECT_GT(max_rel_diff(c, ref), 1.0);
}

TEST(ParanoidRecheck, ConfirmsGoodCorrections) {
  const GemmCase cs{96, 96, 96};
  DeterministicInjector inj({{InjectionKind::kAddDelta, 0, 10, 20, 2.0, 0}});
  const InjectionRun run = run_with_injector(cs, inj, 7, /*paranoid=*/true);
  EXPECT_EQ(run.report.errors_corrected, 1);
  EXPECT_TRUE(run.report.clean());
}

TEST(ReliableWrapper, RetriesUncorrectablePattern) {
  // The cancelling pair is uncorrectable in-flight; ft_dgemm_reliable must
  // roll back and re-run.  The injector fires on every call, so retries
  // exhaust and the final report stays dirty — but C must never silently
  // hold a wrong result without the report saying so.
  const GemmCase cs{64, 64, 64};
  Problem<double> p(cs);
  Matrix<double> c = p.c.clone();
  DeterministicInjector inj({
      {InjectionKind::kAddDelta, 0, 9, 10, 5.0, 0},
      {InjectionKind::kAddDelta, 0, 9, 30, -5.0, 0},
  });
  Options opts;
  opts.injector = &inj;
  const FtReport rep = ft_dgemm_reliable(Layout::kColMajor, cs.ta, cs.tb,
                                         cs.m, cs.n, cs.k, cs.alpha,
                                         p.a.data(), p.a.ld(), p.b.data(),
                                         p.b.ld(), cs.beta, c.data(), c.ld(),
                                         opts, /*max_retries=*/2);
  EXPECT_EQ(rep.retries, 2);
  EXPECT_FALSE(rep.clean());
}

TEST(ReliableWrapper, OneTransientFaultHealsOnRetry) {
  // An injector that only corrupts the first call: the retry is clean and
  // the final result exact.
  class OneShotInjector final : public FaultInjector {
   public:
    void plan_block(const BlockContext& ctx,
                    std::vector<InjectionRecord>& out) override {
      if (fired_ || ctx.panel != 0) return;
      // Cancelling pair within one block -> uncorrectable on first attempt.
      if (ctx.i0 <= 9 && 9 < ctx.i0 + ctx.mlen && ctx.j0 <= 10 &&
          30 < ctx.j0 + ctx.nlen) {
        out.push_back({InjectionKind::kAddDelta, 0, 9, 10, 5.0, 0});
        out.push_back({InjectionKind::kAddDelta, 0, 9, 30, -5.0, 0});
        fired_ = true;
      }
    }

   private:
    bool fired_ = false;
  };

  const GemmCase cs{64, 64, 64};
  Problem<double> p(cs);
  const Matrix<double> ref = reference_result(cs, p);
  Matrix<double> c = p.c.clone();
  OneShotInjector inj;
  Options opts;
  opts.injector = &inj;
  const FtReport rep = ft_dgemm_reliable(Layout::kColMajor, cs.ta, cs.tb,
                                         cs.m, cs.n, cs.k, cs.alpha,
                                         p.a.data(), p.a.ld(), p.b.data(),
                                         p.b.ld(), cs.beta, c.data(), c.ld(),
                                         opts, 2);
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.retries, 1);
  EXPECT_LE(max_rel_diff(c, ref), gemm_tolerance<double>(cs.k));
}

TEST(InjectionLog, RecordsGroundTruthPositionsAndDeltas) {
  const GemmCase cs{64, 64, 64};
  DeterministicInjector inj({{InjectionKind::kAddDelta, 0, 12, 34, 1.5, 0}});
  run_with_injector(cs, inj);
  const auto log = inj.log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].i, 12);
  EXPECT_EQ(log[0].j, 34);
  EXPECT_DOUBLE_EQ(log[0].delta, 1.5);
}

TEST(ApplyCorruption, BitflipReturnsExactDelta) {
  double v = 3.25;
  const double orig = v;
  InjectionRecord rec;
  rec.kind = InjectionKind::kFlipBit;
  rec.bit = 62;
  const double delta = apply_corruption(v, rec);
  // For exponent flips the tiny original is below the ulp of the delta, so
  // orig + delta only reproduces v to rounding of the larger magnitude.
  EXPECT_NEAR(orig + delta, v,
              4e-16 * std::max({std::abs(orig), std::abs(v), 1.0}));
  // Flipping the same bit back restores the value.
  apply_corruption(v, rec);
  EXPECT_DOUBLE_EQ(v, orig);

  float f = -1.5f;
  rec.bit = 30;
  const double fdelta = apply_corruption(f, rec);
  EXPECT_NE(fdelta, 0.0);
}

}  // namespace
}  // namespace ftgemm
