// Unit tests: packing routines and their fused checksum side effects, plus
// the ISA-dispatched SIMD engine against the scalar oracle (panels must be
// bit-identical; checksum sums are lane-reassociated, so they match within
// a rounding tolerance — the summation-order contract of
// docs/DESIGN.md "SIMD packing & checksum engine").
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "abft/checksum.hpp"
#include "arch/cpu_features.hpp"
#include "kernels/packing.hpp"
#include "util/matrix.hpp"

namespace ftgemm {
namespace {

/// Reconstruct element (i, kk) of a packed-A region.
template <typename T>
T packed_a_at(const std::vector<T>& dst, index_t mr, index_t klen, index_t i,
              index_t kk) {
  const index_t panel = i / mr;
  return dst[std::size_t(panel * mr * klen + kk * mr + (i % mr))];
}

/// Reconstruct element (kk, j) of a packed-B region.
template <typename T>
T packed_b_at(const std::vector<T>& dst, index_t nr, index_t klen, index_t kk,
              index_t j) {
  const index_t panel = j / nr;
  return dst[std::size_t(panel * nr * klen + kk * nr + (j % nr))];
}

class PackATest
    : public ::testing::TestWithParam<std::tuple<index_t, index_t, bool>> {};

TEST_P(PackATest, RoundTripWithAlphaAndPadding) {
  const auto [mlen, klen, trans] = GetParam();
  const index_t mr = 16;
  const double alpha = 1.25;
  // Source "A" is 100x100 so sub-regions with offsets are exercised.
  Matrix<double> src(100, 100);
  src.fill_random(11);
  const OperandView<double> view{src.data(), src.ld(), trans};
  const index_t m0 = 8, k0 = 8;

  const index_t panels = (mlen + mr - 1) / mr;
  std::vector<double> dst(static_cast<std::size_t>(panels * mr * klen), -777.0);
  pack_a(view, m0, k0, mlen, klen, mr, alpha, dst.data());

  for (index_t i = 0; i < mlen; ++i)
    for (index_t kk = 0; kk < klen; ++kk)
      EXPECT_DOUBLE_EQ(packed_a_at(dst, mr, klen, i, kk),
                       alpha * view.at(m0 + i, k0 + kk))
          << i << "," << kk;
  // Zero padding in the last partial panel.
  for (index_t i = mlen; i < panels * mr; ++i)
    for (index_t kk = 0; kk < klen; ++kk)
      EXPECT_DOUBLE_EQ(packed_a_at(dst, mr, klen, i, kk), 0.0);
}

TEST_P(PackATest, FtVariantPacksIdenticallyAndUpdatesCc) {
  const auto [mlen, klen, trans] = GetParam();
  const index_t mr = 16;
  const double alpha = -0.5;
  Matrix<double> src(100, 100);
  src.fill_random(13);
  const OperandView<double> view{src.data(), src.ld(), trans};
  const index_t m0 = 0, k0 = 4;

  std::vector<double> bc(static_cast<std::size_t>(klen));
  for (index_t kk = 0; kk < klen; ++kk) bc[std::size_t(kk)] = 0.1 * double(kk + 1);

  const index_t panels = (mlen + mr - 1) / mr;
  std::vector<double> dst_plain(static_cast<std::size_t>(panels * mr * klen));
  std::vector<double> dst_ft(static_cast<std::size_t>(panels * mr * klen));
  std::vector<double> cc(static_cast<std::size_t>(mlen), 1.0);  // pre-seeded: must accumulate

  pack_a(view, m0, k0, mlen, klen, mr, alpha, dst_plain.data());
  pack_a_ft(view, m0, k0, mlen, klen, mr, alpha, dst_ft.data(), bc.data(),
            cc.data());

  EXPECT_EQ(dst_plain, dst_ft) << "FT packing must not change the panel";
  for (index_t i = 0; i < mlen; ++i) {
    double want = 1.0;
    for (index_t kk = 0; kk < klen; ++kk)
      want += alpha * view.at(m0 + i, k0 + kk) * bc[std::size_t(kk)];
    EXPECT_NEAR(cc[std::size_t(i)], want,
                1e-12 * std::max(1.0, std::abs(want)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PackATest,
    ::testing::Combine(::testing::Values<index_t>(1, 15, 16, 17, 48, 61),
                       ::testing::Values<index_t>(1, 7, 64),
                       ::testing::Bool()),
    [](const auto& info) {
      return "m" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_trans" : "_notrans");
    });

class PackBTest
    : public ::testing::TestWithParam<std::tuple<index_t, index_t, bool>> {};

TEST_P(PackBTest, RoundTripWithPadding) {
  const auto [nlen, klen, trans] = GetParam();
  const index_t nr = 8;
  Matrix<double> src(100, 100);
  src.fill_random(17);
  const OperandView<double> view{src.data(), src.ld(), trans};
  const index_t k0 = 3, j0 = 5;

  const index_t panels = (nlen + nr - 1) / nr;
  std::vector<double> dst(static_cast<std::size_t>(panels * nr * klen), -777.0);
  pack_b(view, k0, j0, klen, nlen, nr, dst.data());

  for (index_t kk = 0; kk < klen; ++kk) {
    for (index_t j = 0; j < nlen; ++j)
      EXPECT_DOUBLE_EQ(packed_b_at(dst, nr, klen, kk, j),
                       view.at(k0 + kk, j0 + j));
    for (index_t j = nlen; j < panels * nr; ++j)
      EXPECT_DOUBLE_EQ(packed_b_at(dst, nr, klen, kk, j), 0.0);
  }
}

TEST_P(PackBTest, FtVariantPacksIdenticallyAndUpdatesCr) {
  const auto [nlen, klen, trans] = GetParam();
  const index_t nr = 8;
  Matrix<double> src(100, 100);
  src.fill_random(19);
  const OperandView<double> view{src.data(), src.ld(), trans};
  const index_t k0 = 0, j0 = 2;

  std::vector<double> ar(static_cast<std::size_t>(klen));
  for (index_t kk = 0; kk < klen; ++kk)
    ar[std::size_t(kk)] = 0.01 * double(kk) - 0.3;

  const index_t panels = (nlen + nr - 1) / nr;
  std::vector<double> dst_plain(static_cast<std::size_t>(panels * nr * klen));
  std::vector<double> dst_ft(static_cast<std::size_t>(panels * nr * klen));
  std::vector<double> cr(static_cast<std::size_t>(nlen), 2.0);

  pack_b(view, k0, j0, klen, nlen, nr, dst_plain.data());
  pack_b_ft(view, k0, j0, klen, nlen, nr, dst_ft.data(), ar.data(),
            cr.data());

  EXPECT_EQ(dst_plain, dst_ft);
  for (index_t j = 0; j < nlen; ++j) {
    double want = 2.0;
    for (index_t kk = 0; kk < klen; ++kk)
      want += ar[std::size_t(kk)] * view.at(k0 + kk, j0 + j);
    EXPECT_NEAR(cr[std::size_t(j)], want,
                1e-11 * std::max(1.0, std::abs(want)))
        << "col " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PackBTest,
    ::testing::Combine(::testing::Values<index_t>(1, 7, 8, 9, 40, 83),
                       ::testing::Values<index_t>(1, 13, 64),
                       ::testing::Bool()),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_trans" : "_notrans");
    });

TEST(ReduceBc, MatchesDirectRowSumsAndTracksAmax) {
  const index_t nr = 8, klen = 37, nlen = 43;
  Matrix<double> src(klen, nlen);
  src.fill_random(23, -2.0, 2.0);
  const OperandView<double> view{src.data(), src.ld(), false};

  const index_t panels = (nlen + nr - 1) / nr;
  std::vector<double> packed(static_cast<std::size_t>(panels * nr * klen));
  pack_b(view, 0, 0, klen, nlen, nr, packed.data());

  std::vector<double> bc(static_cast<std::size_t>(klen), -1.0);
  const double amax =
      reduce_bc_from_panel(packed.data(), klen, nlen, nr, 0, klen, bc.data(),
                           0.5);

  double amax_want = 0.5;
  for (index_t kk = 0; kk < klen; ++kk) {
    double want = 0.0;
    for (index_t j = 0; j < nlen; ++j) {
      want += src(kk, j);
      amax_want = std::max(amax_want, std::abs(src(kk, j)));
    }
    EXPECT_NEAR(bc[std::size_t(kk)], want, 1e-12 * std::max(1.0, std::abs(want)));
  }
  EXPECT_DOUBLE_EQ(amax, amax_want);
}

TEST(ReduceBc, PartialKRangeOnlyTouchesItsSlice) {
  const index_t nr = 8, klen = 16, nlen = 16;
  std::vector<double> packed(static_cast<std::size_t>(2 * nr * klen), 1.0);
  std::vector<double> bc(static_cast<std::size_t>(klen), -9.0);
  reduce_bc_from_panel(packed.data(), klen, nlen, nr, 4, 8, bc.data(), 0.0);
  for (index_t kk = 0; kk < klen; ++kk) {
    if (kk >= 4 && kk < 12) {
      EXPECT_DOUBLE_EQ(bc[std::size_t(kk)], double(nlen));
    } else {
      EXPECT_DOUBLE_EQ(bc[std::size_t(kk)], -9.0) << "outside slice";
    }
  }
}

// ---------------------------------------------------------------------------
// Regression: tiles wider than the fixed accumulator block (nr >
// kPackAccLanes) used to overrun the stack-local amax/acc arrays.  Both
// panel reductions must produce correct results for any nr.
// ---------------------------------------------------------------------------

TEST(WideTileRegression, ReduceBcHandlesNrBeyondAccumulatorBlock) {
  const index_t nr = kPackAccLanes + 8;  // 24: wider than one acc block
  const index_t klen = 9, nlen = 2 * nr + 5;
  Matrix<double> src(klen, nlen);
  src.fill_random(29, -3.0, 3.0);
  const OperandView<double> view{src.data(), src.ld(), false};

  const index_t panels = (nlen + nr - 1) / nr;
  std::vector<double> packed(static_cast<std::size_t>(panels * nr * klen));
  pack_b(view, 0, 0, klen, nlen, nr, packed.data());

  std::vector<double> bc(static_cast<std::size_t>(klen));
  const double amax =
      reduce_bc_from_panel(packed.data(), klen, nlen, nr, 0, klen, bc.data(),
                           0.0);

  double amax_want = 0.0;
  for (index_t kk = 0; kk < klen; ++kk) {
    double want = 0.0;
    for (index_t j = 0; j < nlen; ++j) {
      want += src(kk, j);
      amax_want = std::max(amax_want, std::abs(src(kk, j)));
    }
    EXPECT_NEAR(bc[std::size_t(kk)], want,
                1e-12 * std::max(1.0, std::abs(want)));
  }
  EXPECT_DOUBLE_EQ(amax, amax_want);
}

TEST(WideTileRegression, PackBFtHandlesNrBeyondAccumulatorBlock) {
  const index_t nr = kPackAccLanes + 8, klen = 11, nlen = nr + 7;
  Matrix<double> src(klen, nlen);
  src.fill_random(31);
  const OperandView<double> view{src.data(), src.ld(), false};

  std::vector<double> ar(static_cast<std::size_t>(klen));
  for (index_t kk = 0; kk < klen; ++kk)
    ar[std::size_t(kk)] = 0.05 * double(kk) - 0.2;

  const index_t panels = (nlen + nr - 1) / nr;
  std::vector<double> dst(static_cast<std::size_t>(panels * nr * klen));
  std::vector<double> cr(static_cast<std::size_t>(nlen), 0.5);
  pack_b_ft(view, 0, 0, klen, nlen, nr, dst.data(), ar.data(), cr.data());

  for (index_t j = 0; j < nlen; ++j) {
    double want = 0.5;
    for (index_t kk = 0; kk < klen; ++kk)
      want += ar[std::size_t(kk)] * src(kk, j);
    EXPECT_NEAR(cr[std::size_t(j)], want,
                1e-11 * std::max(1.0, std::abs(want)))
        << "col " << j;
  }
}

// ---------------------------------------------------------------------------
// ISA-dispatched SIMD engine vs the scalar oracle: panels bit-identical,
// checksums within a reassociation tolerance, over {NoTrans, Trans} x
// ragged tails x every ISA this machine can execute.
// ---------------------------------------------------------------------------

std::vector<Isa> executable_isas() {
  std::vector<Isa> v{Isa::kScalar};
  if (cpu_features().has_avx2_kernel_support()) v.push_back(Isa::kAvx2);
  if (cpu_features().has_avx512_kernel_support()) v.push_back(Isa::kAvx512);
  return v;
}

template <typename T>
double near_tol() {
  return sizeof(T) == 8 ? 1e-11 : 1e-3;
}

template <typename T>
void expect_near_vec(const std::vector<T>& got, const std::vector<T>& want,
                     const char* what) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(double(got[i]), double(want[i]),
                near_tol<T>() * std::max(1.0, std::abs(double(want[i]))))
        << what << " [" << i << "]";
  }
}

template <typename T>
void run_dispatch_sweep(Isa isa) {
  const PackSet<T> simd = get_pack_set<T>(isa);
  const PackSet<T> ref = get_pack_set<T>(Isa::kScalar);
  ASSERT_NE(simd.pack_a, nullptr);
  ASSERT_NE(simd.pack_a_ft, nullptr);
  ASSERT_NE(simd.pack_b, nullptr);
  ASSERT_NE(simd.pack_b_ft, nullptr);
  ASSERT_NE(simd.reduce_bc, nullptr);
  ASSERT_NE(simd.scale_encode_c, nullptr);
  ASSERT_NE(simd.encode_ar, nullptr);

  const KernelSet<T> ks = get_kernel_set<T>(isa);
  const index_t mr = ks.mr, nr = ks.nr;
  const T alpha = T(1.25);
  Matrix<T> src(200, 200);
  src.fill_random(37);

  const index_t klens[] = {1, 3, 7, 8, 64};
  const index_t mlens[] = {1,      mr - 1, mr,         mr + 1,
                           3 * mr, 5 * mr - 3};
  const index_t nlens[] = {1,      nr - 1, nr,         nr + 1,
                           4 * nr, 6 * nr - 3};

  for (const bool trans : {false, true}) {
    const OperandView<T> view{src.data(), src.ld(), trans};
    for (const index_t klen : klens) {
      // ---- pack_a / pack_a_ft ----
      for (const index_t mlen : mlens) {
        if (mlen <= 0) continue;
        SCOPED_TRACE("isa=" + std::string(isa_name(isa)) +
                     " trans=" + std::to_string(trans) +
                     " mlen=" + std::to_string(mlen) +
                     " klen=" + std::to_string(klen));
        const index_t panels = (mlen + mr - 1) / mr;
        const std::size_t dn = std::size_t(panels * mr * klen);
        std::vector<T> want(dn, T(-77)), got(dn, T(-55));
        ref.pack_a(view, 2, 1, mlen, klen, mr, alpha, want.data());
        simd.pack_a(view, 2, 1, mlen, klen, mr, alpha, got.data());
        EXPECT_EQ(want, got) << "pack_a panel must be bit-identical";

        std::vector<T> bc(static_cast<std::size_t>(klen));
        for (index_t kk = 0; kk < klen; ++kk)
          bc[std::size_t(kk)] = T(0.1) * T(kk + 1);
        std::vector<T> cc_want(std::size_t(mlen), T(1)),
            cc_got(std::size_t(mlen), T(1));
        ref.pack_a_ft(view, 2, 1, mlen, klen, mr, alpha, want.data(),
                      bc.data(), cc_want.data());
        simd.pack_a_ft(view, 2, 1, mlen, klen, mr, alpha, got.data(),
                       bc.data(), cc_got.data());
        EXPECT_EQ(want, got) << "pack_a_ft panel must be bit-identical";
        expect_near_vec(cc_got, cc_want, "cc");
      }

      // ---- pack_b / pack_b_ft / reduce_bc ----
      for (const index_t nlen : nlens) {
        if (nlen <= 0) continue;
        SCOPED_TRACE("isa=" + std::string(isa_name(isa)) +
                     " trans=" + std::to_string(trans) +
                     " nlen=" + std::to_string(nlen) +
                     " klen=" + std::to_string(klen));
        const index_t panels = (nlen + nr - 1) / nr;
        const std::size_t dn = std::size_t(panels * nr * klen);
        std::vector<T> want(dn, T(-77)), got(dn, T(-55));
        ref.pack_b(view, 1, 2, klen, nlen, nr, want.data());
        simd.pack_b(view, 1, 2, klen, nlen, nr, got.data());
        EXPECT_EQ(want, got) << "pack_b panel must be bit-identical";

        std::vector<T> ar(static_cast<std::size_t>(klen));
        for (index_t kk = 0; kk < klen; ++kk)
          ar[std::size_t(kk)] = T(0.01) * T(kk) - T(0.3);
        std::vector<T> cr_want(std::size_t(nlen), T(2)),
            cr_got(std::size_t(nlen), T(2));
        ref.pack_b_ft(view, 1, 2, klen, nlen, nr, want.data(), ar.data(),
                      cr_want.data());
        simd.pack_b_ft(view, 1, 2, klen, nlen, nr, got.data(), ar.data(),
                       cr_got.data());
        EXPECT_EQ(want, got) << "pack_b_ft panel must be bit-identical";
        expect_near_vec(cr_got, cr_want, "cr");

        std::vector<T> bc_want(static_cast<std::size_t>(klen)), bc_got(static_cast<std::size_t>(klen));
        const double amax_want = ref.reduce_bc(want.data(), klen, nlen, nr,
                                               0, klen, bc_want.data(), 0.25);
        const double amax_got = simd.reduce_bc(got.data(), klen, nlen, nr, 0,
                                               klen, bc_got.data(), 0.25);
        expect_near_vec(bc_got, bc_want, "bc");
        EXPECT_DOUBLE_EQ(amax_got, amax_want) << "amax is order-independent";
      }
    }
  }

  // ---- scale_encode_c (beta = 0 / 1 / other) + encode_ar ----
  for (const T beta : {T(0), T(1), T(-0.75)}) {
    for (const index_t ilen : {index_t(1), index_t(7), index_t(8),
                               index_t(33), index_t(64)}) {
      SCOPED_TRACE("isa=" + std::string(isa_name(isa)) + " beta=" +
                   std::to_string(double(beta)) +
                   " ilen=" + std::to_string(ilen));
      const index_t n = 19, ldc = 70, i0 = 3;
      Matrix<T> c_want(ldc, n), c_got(ldc, n);
      c_want.fill_random(41);
      for (index_t j = 0; j < n; ++j)
        for (index_t i = 0; i < ldc; ++i) c_got(i, j) = c_want(i, j);
      std::vector<T> cc_want(std::size_t(i0 + ilen), T(0.5)),
          cc_got(std::size_t(i0 + ilen), T(0.5));
      std::vector<T> cr_want(std::size_t(n), T(-1)),
          cr_got(std::size_t(n), T(-1));
      const PackSet<T> sc = get_pack_set<T>(Isa::kScalar);
      const double amax_want =
          sc.scale_encode_c(c_want.data(), ldc, i0, ilen, n, beta,
                            cc_want.data(), cr_want.data());
      const double amax_got =
          get_pack_set<T>(isa).scale_encode_c(c_got.data(), ldc, i0, ilen, n,
                                              beta, cc_got.data(),
                                              cr_got.data());
      for (index_t j = 0; j < n; ++j)
        for (index_t i = 0; i < ldc; ++i)
          EXPECT_EQ(c_got(i, j), c_want(i, j))
              << "scaled C must be bit-identical at " << i << "," << j;
      expect_near_vec(cc_got, cc_want, "cc");
      expect_near_vec(cr_got, cr_want, "cr_part");
      EXPECT_DOUBLE_EQ(amax_got, amax_want);
    }
  }

  for (const bool trans : {false, true}) {
    for (const index_t ilen : {index_t(1), index_t(9), index_t(40)}) {
      for (const index_t k : {index_t(1), index_t(13), index_t(64)}) {
        SCOPED_TRACE("isa=" + std::string(isa_name(isa)) +
                     " trans=" + std::to_string(trans) +
                     " ilen=" + std::to_string(ilen) +
                     " k=" + std::to_string(k));
        const OperandView<T> view{src.data(), src.ld(), trans};
        std::vector<T> ar_want(std::size_t(k), T(0.25)),
            ar_got(std::size_t(k), T(0.25));
        const double amax_want = get_pack_set<T>(Isa::kScalar).encode_ar(
            view, 4, ilen, k, T(-0.5), ar_want.data());
        const double amax_got = get_pack_set<T>(isa).encode_ar(
            view, 4, ilen, k, T(-0.5), ar_got.data());
        expect_near_vec(ar_got, ar_want, "ar_part");
        EXPECT_DOUBLE_EQ(amax_got, amax_want);
      }
    }
  }
}

TEST(PackDispatch, F64MatchesScalarOracleAcrossIsas) {
  for (const Isa isa : executable_isas()) run_dispatch_sweep<double>(isa);
}

TEST(PackDispatch, F32MatchesScalarOracleAcrossIsas) {
  for (const Isa isa : executable_isas()) run_dispatch_sweep<float>(isa);
}

TEST(PackDispatch, KernelSetCarriesMatchingPackSet) {
  for (const Isa isa : executable_isas()) {
    const KernelSet<double> ks = get_kernel_set<double>(isa);
    EXPECT_EQ(ks.pack.isa, isa);
    EXPECT_NE(ks.pack.pack_a_ft, nullptr);
    EXPECT_NE(ks.pack.reduce_bc, nullptr);
    EXPECT_NE(ks.pack.scale_encode_c, nullptr);
  }
}

}  // namespace
}  // namespace ftgemm
