// Unit tests: packing routines and their fused checksum side effects.
#include <gtest/gtest.h>

#include <vector>

#include "kernels/packing.hpp"
#include "util/matrix.hpp"

namespace ftgemm {
namespace {

/// Reconstruct element (i, kk) of a packed-A region.
template <typename T>
T packed_a_at(const std::vector<T>& dst, index_t mr, index_t klen, index_t i,
              index_t kk) {
  const index_t panel = i / mr;
  return dst[std::size_t(panel * mr * klen + kk * mr + (i % mr))];
}

/// Reconstruct element (kk, j) of a packed-B region.
template <typename T>
T packed_b_at(const std::vector<T>& dst, index_t nr, index_t klen, index_t kk,
              index_t j) {
  const index_t panel = j / nr;
  return dst[std::size_t(panel * nr * klen + kk * nr + (j % nr))];
}

class PackATest
    : public ::testing::TestWithParam<std::tuple<index_t, index_t, bool>> {};

TEST_P(PackATest, RoundTripWithAlphaAndPadding) {
  const auto [mlen, klen, trans] = GetParam();
  const index_t mr = 16;
  const double alpha = 1.25;
  // Source "A" is 100x100 so sub-regions with offsets are exercised.
  Matrix<double> src(100, 100);
  src.fill_random(11);
  const OperandView<double> view{src.data(), src.ld(), trans};
  const index_t m0 = 8, k0 = 8;

  const index_t panels = (mlen + mr - 1) / mr;
  std::vector<double> dst(static_cast<std::size_t>(panels * mr * klen), -777.0);
  pack_a(view, m0, k0, mlen, klen, mr, alpha, dst.data());

  for (index_t i = 0; i < mlen; ++i)
    for (index_t kk = 0; kk < klen; ++kk)
      EXPECT_DOUBLE_EQ(packed_a_at(dst, mr, klen, i, kk),
                       alpha * view.at(m0 + i, k0 + kk))
          << i << "," << kk;
  // Zero padding in the last partial panel.
  for (index_t i = mlen; i < panels * mr; ++i)
    for (index_t kk = 0; kk < klen; ++kk)
      EXPECT_DOUBLE_EQ(packed_a_at(dst, mr, klen, i, kk), 0.0);
}

TEST_P(PackATest, FtVariantPacksIdenticallyAndUpdatesCc) {
  const auto [mlen, klen, trans] = GetParam();
  const index_t mr = 16;
  const double alpha = -0.5;
  Matrix<double> src(100, 100);
  src.fill_random(13);
  const OperandView<double> view{src.data(), src.ld(), trans};
  const index_t m0 = 0, k0 = 4;

  std::vector<double> bc(static_cast<std::size_t>(klen));
  for (index_t kk = 0; kk < klen; ++kk) bc[std::size_t(kk)] = 0.1 * double(kk + 1);

  const index_t panels = (mlen + mr - 1) / mr;
  std::vector<double> dst_plain(static_cast<std::size_t>(panels * mr * klen));
  std::vector<double> dst_ft(static_cast<std::size_t>(panels * mr * klen));
  std::vector<double> cc(static_cast<std::size_t>(mlen), 1.0);  // pre-seeded: must accumulate

  pack_a(view, m0, k0, mlen, klen, mr, alpha, dst_plain.data());
  pack_a_ft(view, m0, k0, mlen, klen, mr, alpha, dst_ft.data(), bc.data(),
            cc.data());

  EXPECT_EQ(dst_plain, dst_ft) << "FT packing must not change the panel";
  for (index_t i = 0; i < mlen; ++i) {
    double want = 1.0;
    for (index_t kk = 0; kk < klen; ++kk)
      want += alpha * view.at(m0 + i, k0 + kk) * bc[std::size_t(kk)];
    EXPECT_NEAR(cc[std::size_t(i)], want,
                1e-12 * std::max(1.0, std::abs(want)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PackATest,
    ::testing::Combine(::testing::Values<index_t>(1, 15, 16, 17, 48, 61),
                       ::testing::Values<index_t>(1, 7, 64),
                       ::testing::Bool()),
    [](const auto& info) {
      return "m" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_trans" : "_notrans");
    });

class PackBTest
    : public ::testing::TestWithParam<std::tuple<index_t, index_t, bool>> {};

TEST_P(PackBTest, RoundTripWithPadding) {
  const auto [nlen, klen, trans] = GetParam();
  const index_t nr = 8;
  Matrix<double> src(100, 100);
  src.fill_random(17);
  const OperandView<double> view{src.data(), src.ld(), trans};
  const index_t k0 = 3, j0 = 5;

  const index_t panels = (nlen + nr - 1) / nr;
  std::vector<double> dst(static_cast<std::size_t>(panels * nr * klen), -777.0);
  pack_b(view, k0, j0, klen, nlen, nr, dst.data());

  for (index_t kk = 0; kk < klen; ++kk) {
    for (index_t j = 0; j < nlen; ++j)
      EXPECT_DOUBLE_EQ(packed_b_at(dst, nr, klen, kk, j),
                       view.at(k0 + kk, j0 + j));
    for (index_t j = nlen; j < panels * nr; ++j)
      EXPECT_DOUBLE_EQ(packed_b_at(dst, nr, klen, kk, j), 0.0);
  }
}

TEST_P(PackBTest, FtVariantPacksIdenticallyAndUpdatesCr) {
  const auto [nlen, klen, trans] = GetParam();
  const index_t nr = 8;
  Matrix<double> src(100, 100);
  src.fill_random(19);
  const OperandView<double> view{src.data(), src.ld(), trans};
  const index_t k0 = 0, j0 = 2;

  std::vector<double> ar(static_cast<std::size_t>(klen));
  for (index_t kk = 0; kk < klen; ++kk)
    ar[std::size_t(kk)] = 0.01 * double(kk) - 0.3;

  const index_t panels = (nlen + nr - 1) / nr;
  std::vector<double> dst_plain(static_cast<std::size_t>(panels * nr * klen));
  std::vector<double> dst_ft(static_cast<std::size_t>(panels * nr * klen));
  std::vector<double> cr(static_cast<std::size_t>(nlen), 2.0);

  pack_b(view, k0, j0, klen, nlen, nr, dst_plain.data());
  pack_b_ft(view, k0, j0, klen, nlen, nr, dst_ft.data(), ar.data(),
            cr.data());

  EXPECT_EQ(dst_plain, dst_ft);
  for (index_t j = 0; j < nlen; ++j) {
    double want = 2.0;
    for (index_t kk = 0; kk < klen; ++kk)
      want += ar[std::size_t(kk)] * view.at(k0 + kk, j0 + j);
    EXPECT_NEAR(cr[std::size_t(j)], want,
                1e-11 * std::max(1.0, std::abs(want)))
        << "col " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PackBTest,
    ::testing::Combine(::testing::Values<index_t>(1, 7, 8, 9, 40, 83),
                       ::testing::Values<index_t>(1, 13, 64),
                       ::testing::Bool()),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_trans" : "_notrans");
    });

TEST(ReduceBc, MatchesDirectRowSumsAndTracksAmax) {
  const index_t nr = 8, klen = 37, nlen = 43;
  Matrix<double> src(klen, nlen);
  src.fill_random(23, -2.0, 2.0);
  const OperandView<double> view{src.data(), src.ld(), false};

  const index_t panels = (nlen + nr - 1) / nr;
  std::vector<double> packed(static_cast<std::size_t>(panels * nr * klen));
  pack_b(view, 0, 0, klen, nlen, nr, packed.data());

  std::vector<double> bc(static_cast<std::size_t>(klen), -1.0);
  const double amax =
      reduce_bc_from_panel(packed.data(), klen, nlen, nr, 0, klen, bc.data(),
                           0.5);

  double amax_want = 0.5;
  for (index_t kk = 0; kk < klen; ++kk) {
    double want = 0.0;
    for (index_t j = 0; j < nlen; ++j) {
      want += src(kk, j);
      amax_want = std::max(amax_want, std::abs(src(kk, j)));
    }
    EXPECT_NEAR(bc[std::size_t(kk)], want, 1e-12 * std::max(1.0, std::abs(want)));
  }
  EXPECT_DOUBLE_EQ(amax, amax_want);
}

TEST(ReduceBc, PartialKRangeOnlyTouchesItsSlice) {
  const index_t nr = 8, klen = 16, nlen = 16;
  std::vector<double> packed(static_cast<std::size_t>(2 * nr * klen), 1.0);
  std::vector<double> bc(static_cast<std::size_t>(klen), -9.0);
  reduce_bc_from_panel(packed.data(), klen, nlen, nr, 4, 8, bc.data(), 0.0);
  for (index_t kk = 0; kk < klen; ++kk) {
    if (kk >= 4 && kk < 12) {
      EXPECT_DOUBLE_EQ(bc[std::size_t(kk)], double(nlen));
    } else {
      EXPECT_DOUBLE_EQ(bc[std::size_t(kk)], -9.0) << "outside slice";
    }
  }
}

}  // namespace
}  // namespace ftgemm
