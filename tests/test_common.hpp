// Shared helpers for the FT-GEMM test suite.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "baseline/naive_gemm.hpp"
#include "core/gemm.hpp"
#include "util/matrix.hpp"

namespace ftgemm::testing {

/// A GEMM problem shape with operand transposes and scalars.
struct GemmCase {
  index_t m, n, k;
  Trans ta = Trans::kNoTrans;
  Trans tb = Trans::kNoTrans;
  double alpha = 1.0;
  double beta = 0.0;

  [[nodiscard]] std::string name() const {
    std::string s = std::to_string(m) + "x" + std::to_string(n) + "x" +
                    std::to_string(k);
    s += ta == Trans::kTrans ? "_Ta" : "_Na";
    s += tb == Trans::kTrans ? "_Tb" : "_Nb";
    auto scal = [](double v) {
      std::string t = std::to_string(v);
      for (char& ch : t) {
        if (ch == '.') ch = 'p';
        if (ch == '-') ch = 'm';
      }
      return t;
    };
    s += "_a" + scal(alpha) + "_b" + scal(beta);
    return s;
  }
};

inline std::ostream& operator<<(std::ostream& os, const GemmCase& c) {
  return os << const_cast<GemmCase&>(c).name();
}

/// Effective dimensions of the stored operand matrices for a case.
inline std::pair<index_t, index_t> a_dims(const GemmCase& c) {
  return c.ta == Trans::kTrans ? std::pair{c.k, c.m} : std::pair{c.m, c.k};
}
inline std::pair<index_t, index_t> b_dims(const GemmCase& c) {
  return c.tb == Trans::kTrans ? std::pair{c.n, c.k} : std::pair{c.k, c.n};
}

/// Build random operands for a case; all deterministic under `seed`.
template <typename T>
struct Problem {
  Matrix<T> a, b, c;

  explicit Problem(const GemmCase& cs, std::uint64_t seed = 7,
                   index_t ld_slack = 0) {
    const auto [am, an] = a_dims(cs);
    const auto [bm, bn] = b_dims(cs);
    a = Matrix<T>(am, an, am + ld_slack);
    b = Matrix<T>(bm, bn, bm + ld_slack);
    c = Matrix<T>(cs.m, cs.n, cs.m + ld_slack);
    a.fill_random(seed);
    b.fill_random(seed + 1);
    c.fill_random(seed + 2);
  }
};

/// Reference result via the naive oracle (column-major).
template <typename T>
Matrix<T> reference_result(const GemmCase& cs, const Problem<T>& p) {
  Matrix<T> ref = p.c.clone();
  if constexpr (sizeof(T) == 8) {
    baseline::naive_dgemm(cs.ta, cs.tb, cs.m, cs.n, cs.k, T(cs.alpha),
                          p.a.data(), p.a.ld(), p.b.data(), p.b.ld(),
                          T(cs.beta), ref.data(), ref.ld());
  } else {
    baseline::naive_sgemm(cs.ta, cs.tb, cs.m, cs.n, cs.k, T(cs.alpha),
                          p.a.data(), p.a.ld(), p.b.data(), p.b.ld(),
                          T(cs.beta), ref.data(), ref.ld());
  }
  return ref;
}

/// Rounding-error budget for an m*n*k GEMM comparison against a different
/// summation order.
template <typename T>
double gemm_tolerance(index_t k) {
  const double eps = std::numeric_limits<T>::epsilon();
  return 64.0 * eps * std::sqrt(double(std::max<index_t>(k, 1)));
}

}  // namespace ftgemm::testing
