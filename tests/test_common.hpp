// Shared helpers for the FT-GEMM test suite: the one reference GEMM
// (naive_ref_gemm / reference_result), the one matrix comparison
// (expect_matrix_near), the shared rounding budget (gemm_tolerance), and
// the deterministic-by-default seed policy (test_seed) — consolidated here
// so no test file re-implements its own oracle or tolerance.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>

#include "baseline/naive_gemm.hpp"
#include "core/gemm.hpp"
#include "kernels/int8_types.hpp"
#include "util/env.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace ftgemm::testing {

/// Base seed for every randomized sweep: FTGEMM_TEST_SEED (env) when set,
/// the suite's fixed default otherwise — so runs are deterministic by
/// default and any CI failure reproduces with one env var.  Failure
/// messages must carry the seed (see seed_note).
inline std::uint64_t test_seed(std::uint64_t fallback) {
  return std::uint64_t(env_long("FTGEMM_TEST_SEED", long(fallback)));
}

/// Attach to failing expectations so the reproduction command is in the
/// log: `EXPECT_...(...) << seed_note(seed);`
inline std::string seed_note(std::uint64_t seed) {
  return "  [reproduce with FTGEMM_TEST_SEED=" + std::to_string(seed) + "]";
}

/// A GEMM problem shape with operand transposes and scalars.
struct GemmCase {
  index_t m, n, k;
  Trans ta = Trans::kNoTrans;
  Trans tb = Trans::kNoTrans;
  double alpha = 1.0;
  double beta = 0.0;

  [[nodiscard]] std::string name() const {
    std::string s = std::to_string(m) + "x" + std::to_string(n) + "x" +
                    std::to_string(k);
    s += ta == Trans::kTrans ? "_Ta" : "_Na";
    s += tb == Trans::kTrans ? "_Tb" : "_Nb";
    auto scal = [](double v) {
      std::string t = std::to_string(v);
      for (char& ch : t) {
        if (ch == '.') ch = 'p';
        if (ch == '-') ch = 'm';
      }
      return t;
    };
    s += "_a" + scal(alpha) + "_b" + scal(beta);
    return s;
  }
};

inline std::ostream& operator<<(std::ostream& os, const GemmCase& c) {
  return os << const_cast<GemmCase&>(c).name();
}

/// Effective dimensions of the stored operand matrices for a case.
inline std::pair<index_t, index_t> a_dims(const GemmCase& c) {
  return c.ta == Trans::kTrans ? std::pair{c.k, c.m} : std::pair{c.m, c.k};
}
inline std::pair<index_t, index_t> b_dims(const GemmCase& c) {
  return c.tb == Trans::kTrans ? std::pair{c.n, c.k} : std::pair{c.k, c.n};
}

/// Build random operands for a case; all deterministic under `seed`.
template <typename T>
struct Problem {
  Matrix<T> a, b, c;

  explicit Problem(const GemmCase& cs, std::uint64_t seed = 7,
                   index_t ld_slack = 0) {
    const auto [am, an] = a_dims(cs);
    const auto [bm, bn] = b_dims(cs);
    a = Matrix<T>(am, an, am + ld_slack);
    b = Matrix<T>(bm, bn, bm + ld_slack);
    c = Matrix<T>(cs.m, cs.n, cs.m + ld_slack);
    a.fill_random(seed);
    b.fill_random(seed + 1);
    c.fill_random(seed + 2);
  }
};

/// The one reference GEMM of the suite: C = alpha*op(A)*op(B) + beta*C via
/// the naive column-major oracle, both precisions (the per-file
/// naive_dgemm/naive_sgemm wrappers collapsed here).
template <typename T>
void naive_ref_gemm(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                    T alpha, const T* a, index_t lda, const T* b, index_t ldb,
                    T beta, T* c, index_t ldc) {
  if constexpr (sizeof(T) == 8) {
    baseline::naive_dgemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c,
                          ldc);
  } else {
    baseline::naive_sgemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c,
                          ldc);
  }
}

/// Reference result of a case via naive_ref_gemm (column-major).
template <typename T>
Matrix<T> reference_result(const GemmCase& cs, const Problem<T>& p) {
  Matrix<T> ref = p.c.clone();
  naive_ref_gemm<T>(cs.ta, cs.tb, cs.m, cs.n, cs.k, T(cs.alpha), p.a.data(),
                    p.a.ld(), p.b.data(), p.b.ld(), T(cs.beta), ref.data(),
                    ref.ld());
  return ref;
}

// ---------------------------------------------------------------------------
// int8 quantized-path helpers (core/gemm_i8.hpp), shared by test_int8.cpp
// and the fuzz sweeps.
// ---------------------------------------------------------------------------

/// Uniform random s8 matrix over the full [-128, 127] lane range.  The
/// generic Matrix::fill_random draws uniform *doubles* in [-1, 1) — cast to
/// int8 that is almost surely 0 or -1 — so the int8 suites draw raw lanes.
inline Matrix<std::int8_t> random_i8_matrix(index_t rows, index_t cols,
                                            std::uint64_t seed,
                                            index_t ld = 0) {
  Matrix<std::int8_t> m(rows, cols, ld);
  Xoshiro256 rng(seed);
  for (index_t j = 0; j < cols; ++j) {
    for (index_t i = 0; i < rows; ++i) {
      m(i, j) = std::int8_t(std::int32_t(rng.bounded(256)) - 128);
    }
  }
  return m;
}

/// The int8 oracle: widened-int64 exact inner sum plus a mirror of
/// dequantize_epilogue_i8's double arithmetic (core/driver_i8.hpp).  The
/// int8 suites compare against it at tolerance ZERO, so the association
/// order of the scale product must match the library's exactly: a
/// row-major call is normalized to the transposed column-major problem
/// with swapped QuantParams, making its product (alpha*sb)*sa — one ULP
/// away from (alpha*sa)*sb in general — hence the `row` branch below.
/// The integer sum itself needs no such care: it is exact either way.
inline void naive_ref_gemm_i8(Layout layout, Trans ta, Trans tb, index_t m,
                              index_t n, index_t k, float alpha,
                              const std::int8_t* a, index_t lda,
                              const std::int8_t* b, index_t ldb, float beta,
                              float* c, index_t ldc,
                              const QuantParams& qp = {}) {
  const bool row = layout == Layout::kRowMajor;
  auto a_at = [&](index_t i, index_t kk) {
    const index_t r = ta == Trans::kNoTrans ? i : kk;
    const index_t s = ta == Trans::kNoTrans ? kk : i;
    return std::int64_t(row ? a[r * lda + s] : a[s * lda + r]);
  };
  auto b_at = [&](index_t kk, index_t j) {
    const index_t r = tb == Trans::kNoTrans ? kk : j;
    const index_t s = tb == Trans::kNoTrans ? j : kk;
    return std::int64_t(row ? b[r * ldb + s] : b[s * ldb + r]);
  };
  auto c_at = [&](index_t i, index_t j) -> float& {
    return row ? c[i * ldc + j] : c[j * ldc + i];
  };
  if (k == 0 || alpha == 0.0f) {
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i < m; ++i) {
        float& cr = c_at(i, j);
        cr = beta == 0.0f ? 0.0f : float(double(beta) * double(cr));
      }
    }
    return;
  }
  const double sab = row
      ? double(alpha) * double(qp.scale_b) * double(qp.scale_a)
      : double(alpha) * double(qp.scale_a) * double(qp.scale_b);
  const std::int64_t za = qp.zero_a, zb = qp.zero_b;
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      std::int64_t s = 0;
      for (index_t kk = 0; kk < k; ++kk) {
        s += (a_at(i, kk) - za) * (b_at(kk, j) - zb);
      }
      float& cr = c_at(i, j);
      const double v = sab * double(s);
      cr = beta == 0.0f ? float(v) : float(v + double(beta) * double(cr));
    }
  }
}

/// Random per-tensor QuantParams spanning exact and inexact scales and the
/// full zero-point range.
inline QuantParams random_quant_params(Xoshiro256& rng) {
  static constexpr float kScales[] = {1.0f, 0.5f, 0.125f, 0.02f, 3.0f};
  QuantParams qp;
  qp.scale_a = kScales[rng.bounded(5)];
  qp.scale_b = kScales[rng.bounded(5)];
  qp.zero_a = std::int32_t(rng.bounded(256)) - 128;
  qp.zero_b = std::int32_t(rng.bounded(256)) - 128;
  return qp;
}

/// Rounding-error budget for an m*n*k GEMM comparison against a different
/// summation order.
template <typename T>
double gemm_tolerance(index_t k) {
  const double eps = std::numeric_limits<T>::epsilon();
  return 64.0 * eps * std::sqrt(double(std::max<index_t>(k, 1)));
}

/// The one matrix comparison of the suite.  tol > 0 compares the
/// denominator-guarded relative difference (max_rel_diff) against tol;
/// tol == 0 demands bit-identity (max_abs_diff exactly zero — the FT-vs-Ori
/// and cross-backend contracts).  On failure, names the worst element.
template <typename T>
void expect_matrix_near(const Matrix<T>& got, const Matrix<T>& want,
                        double tol, const std::string& label = "") {
  ASSERT_EQ(got.rows(), want.rows()) << label;
  ASSERT_EQ(got.cols(), want.cols()) << label;
  double worst = 0.0;
  index_t wi = 0, wj = 0;
  for (index_t j = 0; j < got.cols(); ++j) {
    for (index_t i = 0; i < got.rows(); ++i) {
      const double x = double(got(i, j)), y = double(want(i, j));
      // A NaN pair is "equal" only when both sides are NaN (bit-identity
      // of a NaN-producing case); any other NaN involvement is an
      // unconditional mismatch — |NaN - y| must not vanish into the max.
      if (std::isnan(x) || std::isnan(y)) {
        if (std::isnan(x) && std::isnan(y)) continue;
        worst = std::numeric_limits<double>::infinity();
        wi = i;
        wj = j;
        continue;
      }
      const double denom =
          tol == 0.0 ? 1.0 : std::max({std::abs(x), std::abs(y), 1.0});
      const double diff = std::abs(x - y) / denom;
      if (diff > worst) {
        worst = diff;
        wi = i;
        wj = j;
      }
    }
  }
  EXPECT_LE(worst, tol) << label << (label.empty() ? "" : ": ")
                        << "worst element (" << wi << ", " << wj << "): got "
                        << double(got(wi, wj)) << ", want "
                        << double(want(wi, wj))
                        << (tol == 0.0 ? " (bit-identity required)" : "");
}

}  // namespace ftgemm::testing
