// Shared helpers for the FT-GEMM test suite: the one reference GEMM
// (naive_ref_gemm / reference_result), the one matrix comparison
// (expect_matrix_near), the shared rounding budget (gemm_tolerance), and
// the deterministic-by-default seed policy (test_seed) — consolidated here
// so no test file re-implements its own oracle or tolerance.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>

#include "baseline/naive_gemm.hpp"
#include "core/gemm.hpp"
#include "util/env.hpp"
#include "util/matrix.hpp"

namespace ftgemm::testing {

/// Base seed for every randomized sweep: FTGEMM_TEST_SEED (env) when set,
/// the suite's fixed default otherwise — so runs are deterministic by
/// default and any CI failure reproduces with one env var.  Failure
/// messages must carry the seed (see seed_note).
inline std::uint64_t test_seed(std::uint64_t fallback) {
  return std::uint64_t(env_long("FTGEMM_TEST_SEED", long(fallback)));
}

/// Attach to failing expectations so the reproduction command is in the
/// log: `EXPECT_...(...) << seed_note(seed);`
inline std::string seed_note(std::uint64_t seed) {
  return "  [reproduce with FTGEMM_TEST_SEED=" + std::to_string(seed) + "]";
}

/// A GEMM problem shape with operand transposes and scalars.
struct GemmCase {
  index_t m, n, k;
  Trans ta = Trans::kNoTrans;
  Trans tb = Trans::kNoTrans;
  double alpha = 1.0;
  double beta = 0.0;

  [[nodiscard]] std::string name() const {
    std::string s = std::to_string(m) + "x" + std::to_string(n) + "x" +
                    std::to_string(k);
    s += ta == Trans::kTrans ? "_Ta" : "_Na";
    s += tb == Trans::kTrans ? "_Tb" : "_Nb";
    auto scal = [](double v) {
      std::string t = std::to_string(v);
      for (char& ch : t) {
        if (ch == '.') ch = 'p';
        if (ch == '-') ch = 'm';
      }
      return t;
    };
    s += "_a" + scal(alpha) + "_b" + scal(beta);
    return s;
  }
};

inline std::ostream& operator<<(std::ostream& os, const GemmCase& c) {
  return os << const_cast<GemmCase&>(c).name();
}

/// Effective dimensions of the stored operand matrices for a case.
inline std::pair<index_t, index_t> a_dims(const GemmCase& c) {
  return c.ta == Trans::kTrans ? std::pair{c.k, c.m} : std::pair{c.m, c.k};
}
inline std::pair<index_t, index_t> b_dims(const GemmCase& c) {
  return c.tb == Trans::kTrans ? std::pair{c.n, c.k} : std::pair{c.k, c.n};
}

/// Build random operands for a case; all deterministic under `seed`.
template <typename T>
struct Problem {
  Matrix<T> a, b, c;

  explicit Problem(const GemmCase& cs, std::uint64_t seed = 7,
                   index_t ld_slack = 0) {
    const auto [am, an] = a_dims(cs);
    const auto [bm, bn] = b_dims(cs);
    a = Matrix<T>(am, an, am + ld_slack);
    b = Matrix<T>(bm, bn, bm + ld_slack);
    c = Matrix<T>(cs.m, cs.n, cs.m + ld_slack);
    a.fill_random(seed);
    b.fill_random(seed + 1);
    c.fill_random(seed + 2);
  }
};

/// The one reference GEMM of the suite: C = alpha*op(A)*op(B) + beta*C via
/// the naive column-major oracle, both precisions (the per-file
/// naive_dgemm/naive_sgemm wrappers collapsed here).
template <typename T>
void naive_ref_gemm(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                    T alpha, const T* a, index_t lda, const T* b, index_t ldb,
                    T beta, T* c, index_t ldc) {
  if constexpr (sizeof(T) == 8) {
    baseline::naive_dgemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c,
                          ldc);
  } else {
    baseline::naive_sgemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c,
                          ldc);
  }
}

/// Reference result of a case via naive_ref_gemm (column-major).
template <typename T>
Matrix<T> reference_result(const GemmCase& cs, const Problem<T>& p) {
  Matrix<T> ref = p.c.clone();
  naive_ref_gemm<T>(cs.ta, cs.tb, cs.m, cs.n, cs.k, T(cs.alpha), p.a.data(),
                    p.a.ld(), p.b.data(), p.b.ld(), T(cs.beta), ref.data(),
                    ref.ld());
  return ref;
}

/// Rounding-error budget for an m*n*k GEMM comparison against a different
/// summation order.
template <typename T>
double gemm_tolerance(index_t k) {
  const double eps = std::numeric_limits<T>::epsilon();
  return 64.0 * eps * std::sqrt(double(std::max<index_t>(k, 1)));
}

/// The one matrix comparison of the suite.  tol > 0 compares the
/// denominator-guarded relative difference (max_rel_diff) against tol;
/// tol == 0 demands bit-identity (max_abs_diff exactly zero — the FT-vs-Ori
/// and cross-backend contracts).  On failure, names the worst element.
template <typename T>
void expect_matrix_near(const Matrix<T>& got, const Matrix<T>& want,
                        double tol, const std::string& label = "") {
  ASSERT_EQ(got.rows(), want.rows()) << label;
  ASSERT_EQ(got.cols(), want.cols()) << label;
  double worst = 0.0;
  index_t wi = 0, wj = 0;
  for (index_t j = 0; j < got.cols(); ++j) {
    for (index_t i = 0; i < got.rows(); ++i) {
      const double x = double(got(i, j)), y = double(want(i, j));
      // A NaN pair is "equal" only when both sides are NaN (bit-identity
      // of a NaN-producing case); any other NaN involvement is an
      // unconditional mismatch — |NaN - y| must not vanish into the max.
      if (std::isnan(x) || std::isnan(y)) {
        if (std::isnan(x) && std::isnan(y)) continue;
        worst = std::numeric_limits<double>::infinity();
        wi = i;
        wj = j;
        continue;
      }
      const double denom =
          tol == 0.0 ? 1.0 : std::max({std::abs(x), std::abs(y), 1.0});
      const double diff = std::abs(x - y) / denom;
      if (diff > worst) {
        worst = diff;
        wi = i;
        wj = j;
      }
    }
  }
  EXPECT_LE(worst, tol) << label << (label.empty() ? "" : ": ")
                        << "worst element (" << wi << ", " << wj << "): got "
                        << double(got(wi, wj)) << ", want "
                        << double(want(wi, wj))
                        << (tol == 0.0 ? " (bit-identity required)" : "");
}

}  // namespace ftgemm::testing
