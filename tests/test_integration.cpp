// End-to-end integration tests: multi-call workloads built on the public
// API, running under continuous fault injection — the situations the
// example applications model.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ftblas/level1.hpp"
#include "inject/injectors.hpp"
#include "test_common.hpp"

namespace ftgemm {
namespace {

using testing::gemm_tolerance;

TEST(Integration, ChainedGemmsMlpForwardUnderInjection) {
  // A 4-layer MLP forward pass: each layer is C = A_l * X with injected
  // faults throughout; the protected chain must equal the oracle chain.
  const index_t dims[5] = {96, 128, 64, 80, 10};
  const index_t batch = 33;

  std::vector<Matrix<double>> weights;
  for (int l = 0; l < 4; ++l) {
    weights.emplace_back(dims[l + 1], dims[l]);
    weights.back().fill_random(100 + std::uint64_t(l), -0.5, 0.5);
  }
  Matrix<double> input(dims[0], batch);
  input.fill_random(200);

  // Oracle chain via naive GEMM.
  Matrix<double> ref = input.clone();
  for (int l = 0; l < 4; ++l) {
    Matrix<double> next(dims[l + 1], batch);
    next.fill(0.0);
    baseline::naive_dgemm(Trans::kNoTrans, Trans::kNoTrans, dims[l + 1],
                          batch, dims[l], 1.0, weights[std::size_t(l)].data(),
                          weights[std::size_t(l)].ld(), ref.data(), ref.ld(),
                          0.0, next.data(), next.ld());
    ref = std::move(next);
  }

  // Protected chain with 3 errors injected per layer.
  CountInjector inj(3, 777, 2.0);
  Options opts;
  opts.injector = &inj;
  GemmEngine<double> engine(opts);
  Matrix<double> act = input.clone();
  std::int64_t corrected = 0;
  for (int l = 0; l < 4; ++l) {
    Matrix<double> next(dims[l + 1], batch);
    next.fill(0.0);
    const FtReport rep = engine.ft_gemm(
        Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, dims[l + 1],
        batch, dims[l], 1.0, weights[std::size_t(l)].data(),
        weights[std::size_t(l)].ld(), act.data(), act.ld(), 0.0, next.data(),
        next.ld());
    EXPECT_TRUE(rep.clean()) << "layer " << l;
    corrected += rep.errors_corrected;
    act = std::move(next);
  }
  EXPECT_GT(corrected, 0) << "injection must have fired somewhere";
  EXPECT_LE(max_rel_diff(act, ref), 4 * gemm_tolerance<double>(128));
}

TEST(Integration, PowerIterationConvergesUnderInjection) {
  // Dominant eigenvalue of a symmetric positive matrix via repeated
  // ft_dgemm-based mat-vec (n x 1 GEMM), with faults injected every step.
  const index_t n = 120;
  Matrix<double> a(n, n);
  a.fill_random(300, 0.0, 1.0);
  // Symmetrize: A := (A + Aᵀ)/2 + n*I to make it SPD-ish and dominant.
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < j; ++i) {
      const double avg = 0.5 * (a(i, j) + a(j, i));
      a(i, j) = avg;
      a(j, i) = avg;
    }
    a(j, j) += double(n);
  }

  CountInjector inj(2, 55, 10.0);
  Options opts;
  opts.injector = &inj;

  Matrix<double> v(n, 1), w(n, 1);
  v.fill(1.0 / std::sqrt(double(n)));
  double lambda = 0.0;
  for (int iter = 0; iter < 40; ++iter) {
    w.fill(0.0);
    const FtReport rep = ft_dgemm(Layout::kColMajor, Trans::kNoTrans,
                                  Trans::kNoTrans, n, 1, n, 1.0, a.data(),
                                  a.ld(), v.data(), v.ld(), 0.0, w.data(),
                                  w.ld(), opts);
    ASSERT_TRUE(rep.clean());
    const double norm = ftblas::dnrm2(n, w.data(), 1);
    ASSERT_GT(norm, 0.0);
    for (index_t i = 0; i < n; ++i) v(i, 0) = w(i, 0) / norm;
    lambda = norm;
  }

  // Oracle lambda via clean naive iteration.
  Matrix<double> v2(n, 1), w2(n, 1);
  v2.fill(1.0 / std::sqrt(double(n)));
  double lambda_ref = 0.0;
  for (int iter = 0; iter < 40; ++iter) {
    w2.fill(0.0);
    baseline::naive_dgemm(Trans::kNoTrans, Trans::kNoTrans, n, 1, n, 1.0,
                          a.data(), a.ld(), v2.data(), v2.ld(), 0.0,
                          w2.data(), w2.ld());
    const double norm = ftblas::dnrm2(n, w2.data(), 1);
    for (index_t i = 0; i < n; ++i) v2(i, 0) = w2(i, 0) / norm;
    lambda_ref = norm;
  }
  EXPECT_NEAR(lambda, lambda_ref, 1e-8 * lambda_ref);
}

TEST(Integration, MixedPrecisionPipeline) {
  // f32 forward pass, f64 residual check — exercises both kernel families
  // in one process with shared thread-local contexts.
  const index_t m = 64, n = 48, k = 56;
  Matrix<float> af(m, k), bf(k, n), cf(m, n);
  af.fill_random(1);
  bf.fill_random(2);
  cf.fill(0.0f);
  const FtReport r32 = ft_sgemm(Layout::kColMajor, Trans::kNoTrans,
                                Trans::kNoTrans, m, n, k, 1.0f, af.data(), m,
                                bf.data(), k, 0.0f, cf.data(), m);
  EXPECT_TRUE(r32.clean());

  Matrix<double> ad(m, k), bd(k, n), cd(m, n);
  for (index_t j = 0; j < k; ++j)
    for (index_t i = 0; i < m; ++i) ad(i, j) = double(af(i, j));
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < k; ++i) bd(i, j) = double(bf(i, j));
  cd.fill(0.0);
  const FtReport r64 = ft_dgemm(Layout::kColMajor, Trans::kNoTrans,
                                Trans::kNoTrans, m, n, k, 1.0, ad.data(), m,
                                bd.data(), k, 0.0, cd.data(), m);
  EXPECT_TRUE(r64.clean());

  double worst = 0.0;
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i)
      worst = std::max(worst, std::abs(double(cf(i, j)) - cd(i, j)));
  EXPECT_LT(worst, 1e-3) << "f32 result must track the f64 result";
}

TEST(Integration, LargeSquareUnderSustainedInjection) {
  // One larger run, ~8 panels, 40 injected errors across the whole call.
  const index_t sz = 320;
  Matrix<double> a(sz, sz), b(sz, sz), c(sz, sz);
  a.fill_random(400);
  b.fill_random(401);
  c.fill_random(402);
  Matrix<double> ref = c.clone();
  baseline::naive_dgemm(Trans::kNoTrans, Trans::kNoTrans, sz, sz, sz, 1.0,
                        a.data(), sz, b.data(), sz, 1.0, ref.data(), sz);

  CountInjector inj(40, 999, 1.0);
  Options opts;
  opts.injector = &inj;
  const FtReport rep = ft_dgemm(Layout::kColMajor, Trans::kNoTrans,
                                Trans::kNoTrans, sz, sz, sz, 1.0, a.data(),
                                sz, b.data(), sz, 1.0, c.data(), sz, opts);
  EXPECT_EQ(inj.injected_count(), 40u);
  EXPECT_TRUE(rep.clean());
  EXPECT_LE(max_rel_diff(c, ref), gemm_tolerance<double>(sz));
}

TEST(Integration, ReportAggregationAcrossEngineCalls) {
  GemmEngine<double> engine;
  CountInjector inj(2, 31, 4.0);
  engine.options().injector = &inj;
  std::int64_t total_corrected = 0;
  for (int call = 0; call < 5; ++call) {
    const index_t sz = 64;
    Matrix<double> a(sz, sz), b(sz, sz), c(sz, sz);
    a.fill_random(std::uint64_t(call) * 3 + 1);
    b.fill_random(std::uint64_t(call) * 3 + 2);
    c.fill(0.0);
    const FtReport rep = engine.ft_gemm(Layout::kColMajor, Trans::kNoTrans,
                                        Trans::kNoTrans, sz, sz, sz, 1.0,
                                        a.data(), sz, b.data(), sz, 0.0,
                                        c.data(), sz);
    EXPECT_TRUE(rep.clean());
    total_corrected += rep.errors_corrected;
  }
  EXPECT_GE(total_corrected, 5);
  EXPECT_EQ(inj.injected_count(), 10u);
}

}  // namespace
}  // namespace ftgemm
