// Tests for the baseline GEMMs and the unfused-ABFT comparator.
#include <gtest/gtest.h>

#include "baseline/unfused_abft.hpp"
#include "inject/injectors.hpp"
#include "test_common.hpp"

namespace ftgemm {
namespace {

using testing::GemmCase;
using testing::Problem;
using testing::expect_matrix_near;
using testing::gemm_tolerance;
using testing::reference_result;

class BlockedSweep : public ::testing::TestWithParam<GemmCase> {};

TEST_P(BlockedSweep, BlockedMatchesNaive) {
  const GemmCase cs = GetParam();
  Problem<double> p(cs);
  const Matrix<double> ref = reference_result(cs, p);
  Matrix<double> c = p.c.clone();
  baseline::blocked_dgemm(cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
                          p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), cs.beta,
                          c.data(), c.ld());
  expect_matrix_near(c, ref, gemm_tolerance<double>(cs.k), cs.name());
}

TEST_P(BlockedSweep, BlockedFloatMatchesNaive) {
  const GemmCase cs = GetParam();
  Problem<float> p(cs);
  const Matrix<float> ref = reference_result(cs, p);
  Matrix<float> c = p.c.clone();
  baseline::blocked_sgemm(cs.ta, cs.tb, cs.m, cs.n, cs.k, float(cs.alpha),
                          p.a.data(), p.a.ld(), p.b.data(), p.b.ld(),
                          float(cs.beta), c.data(), c.ld());
  expect_matrix_near(c, ref, gemm_tolerance<float>(cs.k), cs.name());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlockedSweep,
    ::testing::Values(
        GemmCase{1, 1, 1}, GemmCase{63, 65, 64}, GemmCase{100, 100, 300},
        GemmCase{65, 43, 87, Trans::kTrans, Trans::kNoTrans},
        GemmCase{65, 43, 87, Trans::kNoTrans, Trans::kTrans},
        GemmCase{64, 64, 64, Trans::kTrans, Trans::kTrans, -1.5, 0.5},
        GemmCase{50, 50, 50, Trans::kNoTrans, Trans::kNoTrans, 2.0, 0.0}),
    [](const auto& info) { return GemmCase(info.param).name(); });

TEST(UnfusedAbft, CleanRunMatchesOracle) {
  const GemmCase cs{120, 90, 250, Trans::kNoTrans, Trans::kTrans, 1.5, 0.5};
  Problem<double> p(cs);
  const Matrix<double> ref = reference_result(cs, p);
  Matrix<double> c = p.c.clone();
  const FtReport rep = baseline::unfused_ft_dgemm(
      cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha, p.a.data(), p.a.ld(),
      p.b.data(), p.b.ld(), cs.beta, c.data(), c.ld());
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.errors_detected, 0);
  EXPECT_EQ(rep.panels, 1) << "classic ABFT verifies once per call";
  expect_matrix_near(c, ref, gemm_tolerance<double>(cs.k), cs.name());
}

TEST(UnfusedAbft, SingleInjectedErrorCorrected) {
  const GemmCase cs{96, 96, 96};
  Problem<double> p(cs);
  const Matrix<double> ref = reference_result(cs, p);
  Matrix<double> c = p.c.clone();
  DeterministicInjector inj({{InjectionKind::kAddDelta, 0, 33, 44, 6.0, 0}});
  Options opts;
  opts.injector = &inj;
  const FtReport rep = baseline::unfused_ft_dgemm(
      cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha, p.a.data(), p.a.ld(),
      p.b.data(), p.b.ld(), cs.beta, c.data(), c.ld(), opts);
  EXPECT_EQ(rep.errors_corrected, 1);
  EXPECT_TRUE(rep.clean());
  expect_matrix_near(c, ref, gemm_tolerance<double>(cs.k), cs.name());
}

TEST(UnfusedAbft, FloatVariantWorks) {
  const GemmCase cs{64, 64, 64};
  Problem<float> p(cs);
  const Matrix<float> ref = reference_result(cs, p);
  Matrix<float> c = p.c.clone();
  const FtReport rep = baseline::unfused_ft_sgemm(
      cs.ta, cs.tb, cs.m, cs.n, cs.k, float(cs.alpha), p.a.data(), p.a.ld(),
      p.b.data(), p.b.ld(), float(cs.beta), c.data(), c.ld());
  EXPECT_TRUE(rep.clean());
  expect_matrix_near(c, ref, gemm_tolerance<float>(cs.k), cs.name());
}

TEST(UnfusedAbft, WholeCallIsOneDetectionInterval) {
  // Unlike the fused scheme, injections in *different K-panels* land in the
  // same verification interval here; distinct positions still get located.
  const GemmCase cs{80, 80, 600};
  Problem<double> p(cs);
  const Matrix<double> ref = reference_result(cs, p);
  Matrix<double> c = p.c.clone();
  DeterministicInjector inj({
      {InjectionKind::kAddDelta, 0, 5, 6, 2.0, 0},
      {InjectionKind::kAddDelta, 1, 50, 60, -3.0, 0},
  });
  Options opts;
  opts.injector = &inj;
  const FtReport rep = baseline::unfused_ft_dgemm(
      cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha, p.a.data(), p.a.ld(),
      p.b.data(), p.b.ld(), cs.beta, c.data(), c.ld(), opts);
  EXPECT_EQ(rep.panels, 1);
  EXPECT_EQ(rep.errors_corrected, 2);
  expect_matrix_near(c, ref, gemm_tolerance<double>(cs.k), cs.name());
}

}  // namespace
}  // namespace ftgemm
