// The plan layer (core/plan.hpp): plan determinism, PlanCache hit/miss
// accounting and LRU eviction, shape-aware blocking, and — the property the
// whole fast path rests on — bit-identical results between the
// single-macro-tile direct path and the general blocked path, Ori and FT,
// across a sweep of small shapes.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/context.hpp"
#include "core/plan.hpp"
#include "inject/injectors.hpp"
#include "test_common.hpp"

namespace ftgemm {
namespace {

using testing::GemmCase;
using testing::Problem;
using testing::gemm_tolerance;
using testing::reference_result;

TEST(PlanKey, EqualityAndHashCoverEveryField) {
  Options opts;
  opts.threads = 2;
  const PlanKey base =
      make_plan_key(Trans::kNoTrans, Trans::kTrans, 32, 48, 64, opts, true);
  EXPECT_EQ(base, make_plan_key(Trans::kNoTrans, Trans::kTrans, 32, 48, 64,
                                opts, true));
  EXPECT_EQ(PlanKeyHash{}(base),
            PlanKeyHash{}(make_plan_key(Trans::kNoTrans, Trans::kTrans, 32,
                                        48, 64, opts, true)));

  // Each varied input must produce a distinct key.
  EXPECT_FALSE(base == make_plan_key(Trans::kNoTrans, Trans::kTrans, 33, 48,
                                     64, opts, true));
  EXPECT_FALSE(base == make_plan_key(Trans::kTrans, Trans::kTrans, 32, 48,
                                     64, opts, true));
  EXPECT_FALSE(base == make_plan_key(Trans::kNoTrans, Trans::kNoTrans, 32,
                                     48, 64, opts, true));
  EXPECT_FALSE(base == make_plan_key(Trans::kNoTrans, Trans::kTrans, 32, 48,
                                     64, opts, false));
  Options other = opts;
  other.threads = 3;
  EXPECT_FALSE(base == make_plan_key(Trans::kNoTrans, Trans::kTrans, 32, 48,
                                     64, other, true));
  other = opts;
  other.tolerance_factor = 99.0;
  EXPECT_FALSE(base == make_plan_key(Trans::kNoTrans, Trans::kTrans, 32, 48,
                                     64, other, true));
  other = opts;
  other.small_fast_path = false;
  EXPECT_FALSE(base == make_plan_key(Trans::kNoTrans, Trans::kTrans, 32, 48,
                                     64, other, true));
  other = opts;
  other.isa = Isa::kScalar;
  EXPECT_FALSE(base == make_plan_key(Trans::kNoTrans, Trans::kTrans, 32, 48,
                                     64, other, true));
  // The resolved team runtime is part of the fingerprint (compare two
  // explicit backends so the ambient FTGEMM_RUNTIME default cannot mask
  // the field).
  Options omp_rt = opts;
  omp_rt.runtime = RuntimeBackend::kOpenMP;
  Options pool_rt = opts;
  pool_rt.runtime = RuntimeBackend::kPool;
  EXPECT_FALSE(make_plan_key(Trans::kNoTrans, Trans::kTrans, 32, 48, 64,
                             omp_rt, true) ==
               make_plan_key(Trans::kNoTrans, Trans::kTrans, 32, 48, 64,
                             pool_rt, true));
}

TEST(GemmPlan, SameInputsSamePlan) {
  Options opts;
  opts.threads = 2;
  for (const bool ft : {false, true}) {
    const GemmPlan<double> p1 = build_plan<double>(
        Trans::kNoTrans, Trans::kNoTrans, 96, 80, 300, opts, ft);
    const GemmPlan<double> p2 = build_plan<double>(
        Trans::kNoTrans, Trans::kNoTrans, 96, 80, 300, opts, ft);
    EXPECT_EQ(p1.key, p2.key);
    EXPECT_EQ(p1.isa, p2.isa);
    EXPECT_EQ(p1.blocking.mc, p2.blocking.mc);
    EXPECT_EQ(p1.blocking.nc, p2.blocking.nc);
    EXPECT_EQ(p1.blocking.kc, p2.blocking.kc);
    EXPECT_EQ(p1.blocking.mr, p2.blocking.mr);
    EXPECT_EQ(p1.blocking.nr, p2.blocking.nr);
    EXPECT_EQ(p1.threads, p2.threads);
    EXPECT_EQ(p1.num_panels, p2.num_panels);
    EXPECT_EQ(p1.fast_path, p2.fast_path);
    EXPECT_EQ(p1.tol_factor, p2.tol_factor);
    EXPECT_EQ(p1.workspace_bytes, p2.workspace_bytes);
  }
}

TEST(GemmPlan, ResolvesEveryDecision) {
  Options opts;
  opts.threads = 3;
  opts.isa = Isa::kScalar;
  const GemmPlan<double> plan = build_plan<double>(
      Trans::kNoTrans, Trans::kNoTrans, 512, 512, 900, opts, true);
  EXPECT_EQ(plan.isa, Isa::kScalar);
  EXPECT_EQ(plan.kernels.isa, Isa::kScalar);
  EXPECT_EQ(plan.threads, 3);
  EXPECT_GT(plan.tol_factor, 0.0);
  EXPECT_GT(plan.workspace_bytes, 0u);
  EXPECT_EQ(plan.num_panels,
            (900 + plan.blocking.kc - 1) / plan.blocking.kc);
  EXPECT_FALSE(plan.k_zero);

  const GemmPlan<double> ori = build_plan<double>(
      Trans::kNoTrans, Trans::kNoTrans, 512, 512, 900, opts, false);
  EXPECT_EQ(ori.tol_factor, 0.0) << "Ori plans carry no tolerance";
}

TEST(GemmPlan, FastPathOnlyForSingleMacroTileShapes) {
  Options opts;
  opts.threads = 4;
  // Comfortably inside one macro-tile: fast path, topology pinned to 1.
  const GemmPlan<double> small = build_plan<double>(
      Trans::kNoTrans, Trans::kNoTrans, 64, 48, 100, opts, true);
  ASSERT_TRUE(small.fast_path);
  EXPECT_EQ(small.threads, 1);
  EXPECT_EQ(small.num_panels, 1);

  // The shape-aware clamp only ever shrinks blocks toward the problem,
  // never past the cache-derived base — so exceeding a *base* block size in
  // any dimension rules the fast path out.
  const BlockingPlan base = make_plan(small.isa, 8);

  // Depth beyond the base KC: multiple verification panels, general path.
  const GemmPlan<double> deep = build_plan<double>(
      Trans::kNoTrans, Trans::kNoTrans, 64, 48, base.kc + 8, opts, true);
  EXPECT_FALSE(deep.fast_path);
  EXPECT_EQ(deep.threads, 4);
  EXPECT_GT(deep.num_panels, 1);

  // Wider than the base NC cannot be a single tile.
  const GemmPlan<double> wide = build_plan<double>(
      Trans::kNoTrans, Trans::kNoTrans, 64, base.nc + base.nr, 100, opts,
      true);
  EXPECT_FALSE(wide.fast_path);

  // Fitting one macro-tile is necessary but not sufficient: NC can span
  // thousands of columns, so a full-tile-sized problem can carry far more
  // work than one thread should own — the flop bound keeps it on the
  // threaded general path.
  const double tile_flops =
      2.0 * double(base.mc) * double(base.nc) * double(base.kc);
  if (tile_flops > kFastPathFlopCutoff) {
    const GemmPlan<double> heavy = build_plan<double>(
        Trans::kNoTrans, Trans::kNoTrans, base.mc, base.nc, base.kc, opts,
        true);
    EXPECT_FALSE(heavy.fast_path);
    EXPECT_EQ(heavy.threads, 4) << "a heavy single-tile shape keeps the "
                                   "caller's thread request";
  }

  // Degenerate and empty shapes never take it.
  EXPECT_FALSE(build_plan<double>(Trans::kNoTrans, Trans::kNoTrans, 64, 48,
                                  0, opts, true)
                   .fast_path);
  EXPECT_FALSE(build_plan<double>(Trans::kNoTrans, Trans::kNoTrans, 0, 48,
                                  100, opts, true)
                   .fast_path);

  // The opt-out knob forces the general path.
  Options no_fast = opts;
  no_fast.small_fast_path = false;
  const GemmPlan<double> general = build_plan<double>(
      Trans::kNoTrans, Trans::kNoTrans, 64, 48, 100, no_fast, true);
  EXPECT_FALSE(general.fast_path);
  EXPECT_EQ(general.threads, 4);
}

TEST(BlockingShapeAware, ClampsToProblemAndChangesNoLoopCounts) {
  const Isa isa = select_isa();
  const BlockingPlan base = make_plan(isa, 8);
  const BlockingPlan clamped = make_plan(isa, 8, 40, 24, 60);
  // Clamped blocks cover the problem in exactly one step per dimension,
  // like the base plan would.
  EXPECT_GE(clamped.mc, 40);
  EXPECT_GE(clamped.nc, 24);
  EXPECT_GE(clamped.kc, 60);
  EXPECT_LE(clamped.mc, base.mc);
  EXPECT_LE(clamped.nc, base.nc);
  EXPECT_LE(clamped.kc, base.kc);
  EXPECT_EQ(clamped.mc % clamped.mr, 0);
  EXPECT_EQ(clamped.nc % clamped.nr, 0);

  // A big problem is not clamped at all.
  const BlockingPlan big = make_plan(isa, 8, 100000, 100000, 100000);
  EXPECT_EQ(big.mc, base.mc);
  EXPECT_EQ(big.nc, base.nc);
  EXPECT_EQ(big.kc, base.kc);

  // Degenerate k keeps a positive verification interval.
  EXPECT_GE(make_plan(isa, 8, 8, 8, 0).kc, 1);
}

TEST(PlanCacheTest, HitMissAccountingAndReuse) {
  PlanCache<double> cache;
  Options opts;
  opts.threads = 1;
  const auto p1 = cache.get_or_build(Trans::kNoTrans, Trans::kNoTrans, 64,
                                     64, 64, opts, true);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.size(), 1u);

  const auto p2 = cache.get_or_build(Trans::kNoTrans, Trans::kNoTrans, 64,
                                     64, 64, opts, true);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(p1.get(), p2.get()) << "a hit returns the same immutable plan";

  // Different fingerprint dimensions each miss once.
  cache.get_or_build(Trans::kNoTrans, Trans::kNoTrans, 64, 64, 65, opts,
                     true);
  cache.get_or_build(Trans::kNoTrans, Trans::kNoTrans, 64, 64, 64, opts,
                     false);
  cache.get_or_build(Trans::kTrans, Trans::kNoTrans, 64, 64, 64, opts, true);
  EXPECT_EQ(cache.misses(), 4u);
  EXPECT_EQ(cache.size(), 4u);

  // All four recur as hits.
  cache.get_or_build(Trans::kNoTrans, Trans::kNoTrans, 64, 64, 65, opts,
                     true);
  cache.get_or_build(Trans::kNoTrans, Trans::kNoTrans, 64, 64, 64, opts,
                     false);
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 4u);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  cache.get_or_build(Trans::kNoTrans, Trans::kNoTrans, 64, 64, 64, opts,
                     true);
  EXPECT_EQ(cache.misses(), 5u) << "clear() drops plans, not counters";
}

TEST(PlanCacheTest, LruEvictsLeastRecentlyUsed) {
  PlanCache<float> cache(2);
  Options opts;
  opts.threads = 1;
  const auto shape = [&](index_t k) {
    return cache.get_or_build(Trans::kNoTrans, Trans::kNoTrans, 16, 16, k,
                              opts, false);
  };
  shape(1);  // miss
  shape(2);  // miss
  shape(1);  // hit (1 becomes most recent)
  shape(3);  // miss, evicts 2
  EXPECT_EQ(cache.size(), 2u);
  shape(1);  // still cached
  EXPECT_EQ(cache.hits(), 2u);
  shape(2);  // evicted above -> miss again
  EXPECT_EQ(cache.misses(), 4u);
}

// ---------------------------------------------------------------------------
// Fast-path vs general-path equivalence: the acceptance bar is bit-identical
// C for both Ori and FT, plus identical FT cleanliness, across shapes with
// edge tiles, transposes, and non-trivial alpha/beta.
// ---------------------------------------------------------------------------

template <typename T>
class PlanEquivalenceTyped : public ::testing::Test {};
using Precisions = ::testing::Types<float, double>;
TYPED_TEST_SUITE(PlanEquivalenceTyped, Precisions);

template <typename T>
void expect_bit_identical(const GemmCase& cs) {
  Problem<T> p(cs, 101);
  Matrix<T> c_fast = p.c.clone();
  Matrix<T> c_general = p.c.clone();

  Options fast_opts;     // default: planner may take the fast path
  Options general_opts;
  general_opts.small_fast_path = false;

  // Confirm the sweep actually exercises the branch under test.
  ASSERT_TRUE(build_plan<T>(cs.ta, cs.tb, cs.m, cs.n, cs.k, fast_opts, true)
                  .fast_path)
      << cs;
  ASSERT_FALSE(
      build_plan<T>(cs.ta, cs.tb, cs.m, cs.n, cs.k, general_opts, true)
          .fast_path)
      << cs;

  FtReport rep_fast, rep_general;
  if constexpr (sizeof(T) == 8) {
    rep_fast = ft_dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k,
                        cs.alpha, p.a.data(), p.a.ld(), p.b.data(), p.b.ld(),
                        cs.beta, c_fast.data(), c_fast.ld(), fast_opts);
    rep_general = ft_dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k,
                           cs.alpha, p.a.data(), p.a.ld(), p.b.data(),
                           p.b.ld(), cs.beta, c_general.data(),
                           c_general.ld(), general_opts);
  } else {
    rep_fast = ft_sgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k,
                        T(cs.alpha), p.a.data(), p.a.ld(), p.b.data(),
                        p.b.ld(), T(cs.beta), c_fast.data(), c_fast.ld(),
                        fast_opts);
    rep_general = ft_sgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k,
                           T(cs.alpha), p.a.data(), p.a.ld(), p.b.data(),
                           p.b.ld(), T(cs.beta), c_general.data(),
                           c_general.ld(), general_opts);
  }
  EXPECT_TRUE(rep_fast.clean()) << cs;
  EXPECT_TRUE(rep_general.clean()) << cs;
  EXPECT_EQ(rep_fast.errors_detected, 0) << cs;
  EXPECT_EQ(rep_general.errors_detected, 0) << cs;
  ASSERT_EQ(0, std::memcmp(c_fast.data(), c_general.data(),
                           sizeof(T) * std::size_t(c_fast.ld()) *
                               std::size_t(cs.n)))
      << "FT fast path diverged from general path for " << cs;

  // Ori: same sweep, same bar.
  Matrix<T> o_fast = p.c.clone();
  Matrix<T> o_general = p.c.clone();
  if constexpr (sizeof(T) == 8) {
    dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
          p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), cs.beta, o_fast.data(),
          o_fast.ld(), fast_opts);
    dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
          p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), cs.beta,
          o_general.data(), o_general.ld(), general_opts);
  } else {
    sgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, T(cs.alpha),
          p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), T(cs.beta),
          o_fast.data(), o_fast.ld(), fast_opts);
    sgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, T(cs.alpha),
          p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), T(cs.beta),
          o_general.data(), o_general.ld(), general_opts);
  }
  ASSERT_EQ(0, std::memcmp(o_fast.data(), o_general.data(),
                           sizeof(T) * std::size_t(o_fast.ld()) *
                               std::size_t(cs.n)))
      << "Ori fast path diverged from general path for " << cs;

  // And both agree with the naive oracle to rounding.
  const Matrix<T> ref = reference_result(cs, p);
  const double tol = gemm_tolerance<T>(cs.k);
  EXPECT_LE(max_abs_diff(c_fast, ref), tol) << cs;
}

TYPED_TEST(PlanEquivalenceTyped, FastPathBitIdenticalToGeneralPath) {
  using T = TypeParam;
  std::vector<GemmCase> cases;
  // Small-shape sweep: register-tile multiples, edge tiles, tiny and
  // rectangular shapes, both transposes, assorted scalars.
  for (const index_t m : {1, 5, 16, 33}) {
    for (const index_t n : {1, 7, 24}) {
      for (const index_t k : {1, 13, 64}) {
        cases.push_back({m, n, k, Trans::kNoTrans, Trans::kNoTrans, 1.25,
                         -0.5});
      }
    }
  }
  cases.push_back({48, 48, 96, Trans::kTrans, Trans::kNoTrans, 2.0, 0.0});
  cases.push_back({48, 48, 96, Trans::kNoTrans, Trans::kTrans, -1.0, 1.0});
  cases.push_back({31, 29, 100, Trans::kTrans, Trans::kTrans, 0.75, 0.25});
  for (const GemmCase& cs : cases) expect_bit_identical<T>(cs);
}

TEST(PlanCacheTest, ClearProcessCachesRereadsEnvironment) {
  // The free functions' shared plan cache freezes env knobs at plan-build
  // time; clear_process_caches() is the documented way to re-read them.
  const index_t n = 32;
  Matrix<double> a(n, n), b(n, n), c(n, n);
  a.fill_random(1);
  b.fill_random(2);
  c.fill(0.0);
  const auto call = [&] {
    dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n, n, n, 1.0,
          a.data(), n, b.data(), n, 0.0, c.data(), n);
  };
  call();  // warm the shared cache for this shape

  // With the fast path switched off via env, a *stale* plan would still run
  // it; after the clear, the rebuilt plan must observe the override.
  ::setenv("FTGEMM_FAST_PATH_FLOPS", "1", 1);
  const GemmPlan<double> stale_view =
      build_plan<double>(Trans::kNoTrans, Trans::kNoTrans, n, n, n, {},
                         false);
  EXPECT_FALSE(stale_view.fast_path)
      << "a freshly built plan sees the env override";
  clear_process_caches();
  call();  // must not crash and must re-plan under the new env
  ::unsetenv("FTGEMM_FAST_PATH_FLOPS");
  clear_process_caches();
}

TEST(PlanCacheTest, ClearProcessCachesAlsoDropsResidentOperands) {
  // One clear covers both shared caches: the plans and the resident
  // operand payloads encoded against them.
  clear_process_caches();
  const index_t n = 48;
  Matrix<double> a(n, n), b(n, n), c(n, n);
  a.fill_random(11);
  b.fill_random(12);
  c.fill(0.0);
  Options opts;
  opts.resident_a = true;
  const auto call = [&] {
    return ft_dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n,
                    n, n, 1.0, a.data(), n, b.data(), n, 0.0, c.data(), n,
                    opts);
  };
  EXPECT_FALSE(call().resident_hit);
  EXPECT_TRUE(call().resident_hit);
  EXPECT_GE(process_context_cache<double>().operands().stats().entries, 1u);

  clear_process_caches();
  EXPECT_EQ(process_context_cache<double>().operands().stats().entries, 0u);
  const std::uint64_t misses_before =
      process_context_cache<double>().plan_misses();
  EXPECT_FALSE(call().resident_hit) << "cleared entry must re-encode";
  EXPECT_GT(process_context_cache<double>().plan_misses(), misses_before)
      << "cleared plan must rebuild too";
}

TEST(PlanCacheTest, DeprecatedClearAliasStillClears) {
  // clear_thread_plan_cache() survives one release as an alias; it must
  // keep the historical behavior (now routed to clear_process_caches).
  const index_t n = 32;
  Matrix<double> a(n, n), b(n, n), c(n, n);
  a.fill_random(21);
  b.fill_random(22);
  c.fill(0.0);
  Options opts;
  opts.resident_a = true;
  ft_dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n, n, n, 1.0,
           a.data(), n, b.data(), n, 0.0, c.data(), n, opts);
  EXPECT_GE(process_context_cache<double>().operands().stats().entries, 1u);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  clear_thread_plan_cache();
#pragma GCC diagnostic pop
  EXPECT_EQ(process_context_cache<double>().operands().stats().entries, 0u);
  const std::uint64_t misses_before =
      process_context_cache<double>().plan_misses();
  dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n, n, n, 1.0,
        a.data(), n, b.data(), n, 0.0, c.data(), n);
  EXPECT_GT(process_context_cache<double>().plan_misses(), misses_before)
      << "the alias must drop cached plans exactly like the new name";
}

TEST(PlanFastPath, InjectedFaultsStillDetectedAndCorrected) {
  // The fast path keeps the fused checksums: a burst aimed at a
  // single-macro-tile problem must be corrected exactly as on the general
  // path.
  const GemmCase cs{48, 40, 96, Trans::kNoTrans, Trans::kNoTrans, 1.0, 0.5};
  Problem<double> p(cs, 404);
  const Matrix<double> ref = reference_result(cs, p);

  Options opts;
  ASSERT_TRUE(
      build_plan<double>(cs.ta, cs.tb, cs.m, cs.n, cs.k, opts, true).fast_path);
  CountInjector injector(3, 2026, 8.0);
  opts.injector = &injector;
  std::vector<CorrectionRecord> log;
  opts.correction_log = &log;

  Matrix<double> c = p.c.clone();
  const FtReport rep = ft_dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n,
                                cs.k, cs.alpha, p.a.data(), p.a.ld(),
                                p.b.data(), p.b.ld(), cs.beta, c.data(),
                                c.ld(), opts);
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(injector.injected_count(), 3u);
  EXPECT_EQ(rep.errors_corrected, 3);
  EXPECT_EQ(log.size(), 3u);
  EXPECT_LE(max_abs_diff(c, ref), gemm_tolerance<double>(cs.k));
}

}  // namespace
}  // namespace ftgemm
