// The thread-team runtime layer (src/runtime/): topology resolution, backend
// selection, team-primitive semantics on both backends, and — the contract
// the whole refactor rests on — bit-identical (FT-)GEMM results between the
// persistent worker pool and the OpenMP region at equal thread counts.
#include <gtest/gtest.h>
#include <omp.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

#include "core/gemm_batched.hpp"
#include "core/plan.hpp"
#include "inject/injectors.hpp"
#include "runtime/team.hpp"
#include "runtime/topology.hpp"
#include "test_common.hpp"

namespace ftgemm {
namespace {

using testing::GemmCase;
using testing::Problem;
using testing::gemm_tolerance;
using testing::reference_result;

// ---------------------------------------------------------------------------
// Topology policy.
// ---------------------------------------------------------------------------

TEST(Topology, PerCallOverrideWinsOverEverything) {
  ::setenv("FTGEMM_THREADS", "7", 1);
  EXPECT_EQ(runtime::topology(3), 3);
  ::unsetenv("FTGEMM_THREADS");
  EXPECT_EQ(runtime::topology(1), 1);
}

TEST(Topology, EnvThenHardwareConcurrency) {
  ::setenv("FTGEMM_THREADS", "5", 1);
  EXPECT_EQ(runtime::topology(0), 5);
  ::unsetenv("FTGEMM_THREADS");
  EXPECT_EQ(runtime::topology(0), runtime::hardware_concurrency());
  EXPECT_GE(runtime::hardware_concurrency(), 1);
}

TEST(Topology, BackendResolutionOrder) {
  // Explicit request wins regardless of environment.
  ::setenv("FTGEMM_RUNTIME", "pool", 1);
  EXPECT_EQ(runtime::resolve_backend(RuntimeBackend::kOpenMP),
            RuntimeBackend::kOpenMP);
  // kAuto defers to FTGEMM_RUNTIME...
  EXPECT_EQ(runtime::resolve_backend(RuntimeBackend::kAuto),
            RuntimeBackend::kPool);
  ::setenv("FTGEMM_RUNTIME", "omp", 1);
  EXPECT_EQ(runtime::resolve_backend(RuntimeBackend::kAuto),
            RuntimeBackend::kOpenMP);
  ::setenv("FTGEMM_RUNTIME", "openmp", 1);
  EXPECT_EQ(runtime::resolve_backend(RuntimeBackend::kAuto),
            RuntimeBackend::kOpenMP);
  // ...then the library default.
  ::unsetenv("FTGEMM_RUNTIME");
  EXPECT_EQ(runtime::resolve_backend(RuntimeBackend::kAuto),
            RuntimeBackend::kOpenMP);
}

TEST(Topology, PlannerFreezesResolvedBackendIntoThePlan) {
  Options opts;
  opts.threads = 2;
  ::setenv("FTGEMM_RUNTIME", "pool", 1);
  const GemmPlan<double> pooled = build_plan<double>(
      Trans::kNoTrans, Trans::kNoTrans, 256, 256, 256, opts, false);
  EXPECT_EQ(pooled.runtime, RuntimeBackend::kPool);
  ::unsetenv("FTGEMM_RUNTIME");
  const GemmPlan<double> defaulted = build_plan<double>(
      Trans::kNoTrans, Trans::kNoTrans, 256, 256, 256, opts, false);
  EXPECT_EQ(defaulted.runtime, RuntimeBackend::kOpenMP);

  opts.runtime = RuntimeBackend::kPool;
  const GemmPlan<double> forced = build_plan<double>(
      Trans::kNoTrans, Trans::kNoTrans, 256, 256, 256, opts, false);
  EXPECT_EQ(forced.runtime, RuntimeBackend::kPool);
  // The backend is part of the fingerprint: pool and OpenMP plans of one
  // shape never alias in a cache.
  EXPECT_FALSE(forced.key == defaulted.key);
}

// ---------------------------------------------------------------------------
// Team-primitive semantics, identical across backends.
// ---------------------------------------------------------------------------

class TeamSemantics : public ::testing::TestWithParam<RuntimeBackend> {};

TEST_P(TeamSemantics, EveryRankRunsOnceAndBarrierSynchronizes) {
  const RuntimeBackend backend = GetParam();
  const int nt = 4;
  std::vector<int> seen(std::size_t(nt), 0);
  std::atomic<int> errors{0};
  auto body = [&](runtime::TeamMember& tm) {
    if (tm.nt() != nt) errors.fetch_add(1);
    if (tm.tid() < 0 || tm.tid() >= nt) {
      errors.fetch_add(1);
      return;
    }
    seen[std::size_t(tm.tid())] += 1;
    tm.barrier();
    // All pre-barrier writes are visible to every member.
    for (int t = 0; t < nt; ++t) {
      if (seen[std::size_t(t)] != 1) errors.fetch_add(1);
    }
  };
  runtime::run_team(backend, nt, body);
  EXPECT_EQ(errors.load(), 0);
  for (int t = 0; t < nt; ++t) EXPECT_EQ(seen[std::size_t(t)], 1);
}

TEST_P(TeamSemantics, BarrierPhasesNeverTear) {
  const RuntimeBackend backend = GetParam();
  const int nt = 3;
  const int phases = 64;
  std::vector<int> slot(std::size_t(nt), -1);
  std::atomic<int> errors{0};
  auto body = [&](runtime::TeamMember& tm) {
    for (int phase = 0; phase < phases; ++phase) {
      slot[std::size_t(tm.tid())] = phase;
      tm.barrier();
      for (int t = 0; t < nt; ++t) {
        if (slot[std::size_t(t)] != phase) errors.fetch_add(1);
      }
      tm.barrier();  // writes of the next phase must not race the reads
    }
  };
  runtime::run_team(backend, nt, body);
  EXPECT_EQ(errors.load(), 0);
}

TEST_P(TeamSemantics, SingleRunsExactlyOnceOnRankZeroThenBarriers) {
  const RuntimeBackend backend = GetParam();
  const int nt = 4;
  std::atomic<int> executions{0};
  std::atomic<int> errors{0};
  int executor = -1;
  int payload = 0;
  auto body = [&](runtime::TeamMember& tm) {
    tm.single([&] {
      executions.fetch_add(1);
      executor = tm.tid();
      payload = 42;
    });
    // The trailing barrier makes the single's writes visible everywhere.
    if (payload != 42) errors.fetch_add(1);
  };
  runtime::run_team(backend, nt, body);
  EXPECT_EQ(executions.load(), 1);
  EXPECT_EQ(executor, 0) << "single is pinned to rank 0 for determinism";
  EXPECT_EQ(errors.load(), 0);
}

TEST_P(TeamSemantics, SoloTeamRunsInlineWithoutDispatch) {
  const RuntimeBackend backend = GetParam();
  int runs = 0;
  auto body = [&](runtime::TeamMember& tm) {
    EXPECT_EQ(tm.tid(), 0);
    EXPECT_EQ(tm.nt(), 1);
    tm.barrier();          // no-op, must not hang
    tm.single([&] { ++runs; });
  };
  runtime::run_team(backend, 1, body);
  EXPECT_EQ(runs, 1);
}

INSTANTIATE_TEST_SUITE_P(BothBackends, TeamSemantics,
                         ::testing::Values(RuntimeBackend::kOpenMP,
                                           RuntimeBackend::kPool),
                         [](const auto& info) {
                           return info.param == RuntimeBackend::kPool
                                      ? "pool"
                                      : "openmp";
                         });

TEST(PoolRuntime, WorkersPersistAndAreReusedAcrossRegions) {
  auto noop = [](runtime::TeamMember& tm) { tm.barrier(); };
  runtime::run_team(RuntimeBackend::kPool, 3, noop);
  const int after_first = runtime::pool_worker_count();
  EXPECT_GE(after_first, 2);
  // Back-to-back sequential teams of the same width lease the same parked
  // workers instead of spawning.
  for (int i = 0; i < 16; ++i) runtime::run_team(RuntimeBackend::kPool, 3, noop);
  EXPECT_EQ(runtime::pool_worker_count(), after_first);
}

TEST(PoolRuntime, AsyncLeaseRunsEveryRankAndFiresCompletionOnce) {
  // run_team_async: all nt ranks execute on pool workers, the calling
  // thread returns immediately, and the completion hook fires exactly once
  // after every member finished (the serving layer's dispatch primitive).
  const int nt = 3;
  std::atomic<int> ran{0};
  std::atomic<int> completions{0};
  std::mutex m;
  std::condition_variable cv;
  bool done = false;

  std::vector<int> rank_seen(std::size_t(nt), 0);
  auto body = [&](runtime::TeamMember& tm) {
    ASSERT_EQ(tm.nt(), nt);
    ++rank_seen[std::size_t(tm.tid())];
    ran.fetch_add(1);
    tm.barrier();
  };
  auto completion = [&] {
    completions.fetch_add(1);
    std::lock_guard<std::mutex> lk(m);
    done = true;
    cv.notify_all();
  };
  runtime::run_team_async(nt, body, completion);
  {
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return done; });
  }
  EXPECT_EQ(ran.load(), nt);
  EXPECT_EQ(completions.load(), 1);
  for (int r = 0; r < nt; ++r)
    EXPECT_EQ(rank_seen[std::size_t(r)], 1) << "rank " << r;
}

TEST(PoolRuntime, TryLeaseFailsWithoutSideEffectsWhenWorkersAreBusy) {
  // Park a known number of workers, then occupy all of them: the
  // non-blocking try-lease must refuse (without spawning or running
  // anything) while they are busy, and succeed again once they are free.
  auto noop = [](runtime::TeamMember& tm) { tm.barrier(); };
  runtime::run_team(RuntimeBackend::kPool, 3, noop);  // ensure >= 2 parked
  const int workers = runtime::pool_worker_count();
  ASSERT_GE(workers, 2);

  std::mutex m;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> holders{0};
  auto hold = [&](runtime::TeamMember&) {
    holders.fetch_add(1);
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return release; });
  };
  std::atomic<bool> held_done{false};
  auto held_completion = [&] { held_done.store(true); };
  // Occupy every parked worker.
  ASSERT_TRUE(runtime::try_run_team_async(
      runtime::pool_idle_worker_count(), hold, held_completion));
  while (holders.load() < workers) {
  }
  EXPECT_EQ(runtime::pool_idle_worker_count(), 0);

  std::atomic<bool> stray_ran{false};
  auto stray = [&](runtime::TeamMember&) { stray_ran.store(true); };
  auto stray_done = [&] { stray_ran.store(true); };
  EXPECT_FALSE(runtime::try_run_team_async(1, stray, stray_done))
      << "try-lease must fail while every worker is leased";
  EXPECT_EQ(runtime::pool_worker_count(), workers)
      << "a failed try-lease must not spawn";
  EXPECT_FALSE(stray_ran.load());

  {
    std::lock_guard<std::mutex> lk(m);
    release = true;
    cv.notify_all();
  }
  while (!held_done.load()) {
  }
  // All workers parked again: the try-lease succeeds now.
  std::atomic<bool> late_done{false};
  auto late_body = [](runtime::TeamMember&) {};
  auto late_completion = [&] { late_done.store(true); };
  ASSERT_TRUE(runtime::try_run_team_async(1, late_body, late_completion));
  while (!late_done.load()) {
  }
}

TEST(PoolRuntime, TryLeaseReserveKeepsHeadroomForSiblings) {
  // The `reserve` overload refuses a lease that would leave fewer than
  // `reserve` workers parked — the fairness hook the sharded service uses
  // so one dispatcher cannot strip the pool bare under its siblings.
  auto noop = [](runtime::TeamMember& tm) { tm.barrier(); };
  runtime::run_team(RuntimeBackend::kPool, 3, noop);  // ensure >= 2 parked
  const int idle = runtime::pool_idle_worker_count();
  ASSERT_GE(idle, 2);

  std::atomic<bool> ran{false};
  auto body = [&](runtime::TeamMember&) { ran.store(true); };
  std::atomic<bool> done{false};
  auto completion = [&] { done.store(true); };

  EXPECT_FALSE(runtime::try_run_team_async(idle, body, completion, 1))
      << "a whole-pool lease with reserve=1 must refuse";
  EXPECT_FALSE(ran.load());
  EXPECT_EQ(runtime::pool_idle_worker_count(), idle)
      << "a refused lease must not consume workers";

  ASSERT_TRUE(runtime::try_run_team_async(idle, body, completion, 0));
  while (!done.load()) {
  }
  EXPECT_TRUE(ran.load());
}

TEST(PoolRuntime, NestedOpenMPRegionFallsBackToPool) {
  // A nested `#pragma omp parallel` delivers a one-member team by default,
  // which would silently drop every tid > 0 partition.  run_team detects
  // the nesting and routes the OpenMP backend to the pool instead.
  std::vector<int> seen(2, 0);
#pragma omp parallel num_threads(2)
  {
    if (omp_get_thread_num() == 0) {
      auto body = [&](runtime::TeamMember& tm) {
        seen[std::size_t(tm.tid())] = 1;
        tm.barrier();
      };
      runtime::run_team(RuntimeBackend::kOpenMP, 2, body);
    }
  }
  EXPECT_EQ(seen[0], 1);
  EXPECT_EQ(seen[1], 1);
}

// ---------------------------------------------------------------------------
// The acceptance bar: pool results are bit-identical to OpenMP results at
// equal thread counts, Ori and FT, across shapes with edge tiles,
// transposes, non-trivial scalars, and multiple verification panels.
// ---------------------------------------------------------------------------

template <typename T>
void expect_backend_bit_identity(const GemmCase& cs, int threads) {
  Problem<T> p(cs, 31);
  Options omp_opts;
  omp_opts.threads = threads;
  omp_opts.runtime = RuntimeBackend::kOpenMP;
  omp_opts.small_fast_path = false;  // keep the team path under test
  Options pool_opts = omp_opts;
  pool_opts.runtime = RuntimeBackend::kPool;

  const auto call_ft = [&](Matrix<T>& c, const Options& o) {
    if constexpr (sizeof(T) == 8) {
      return ft_dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k,
                      cs.alpha, p.a.data(), p.a.ld(), p.b.data(), p.b.ld(),
                      cs.beta, c.data(), c.ld(), o);
    } else {
      return ft_sgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k,
                      T(cs.alpha), p.a.data(), p.a.ld(), p.b.data(),
                      p.b.ld(), T(cs.beta), c.data(), c.ld(), o);
    }
  };
  const auto call_ori = [&](Matrix<T>& c, const Options& o) {
    if constexpr (sizeof(T) == 8) {
      dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
            p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), cs.beta, c.data(),
            c.ld(), o);
    } else {
      sgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, T(cs.alpha),
            p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), T(cs.beta), c.data(),
            c.ld(), o);
    }
  };
  const std::size_t bytes =
      sizeof(T) * std::size_t(p.c.ld()) * std::size_t(cs.n);

  Matrix<T> ft_omp = p.c.clone();
  Matrix<T> ft_pool = p.c.clone();
  const FtReport rep_omp = call_ft(ft_omp, omp_opts);
  const FtReport rep_pool = call_ft(ft_pool, pool_opts);
  EXPECT_TRUE(rep_omp.clean()) << cs;
  EXPECT_TRUE(rep_pool.clean()) << cs;
  EXPECT_EQ(rep_pool.errors_detected, 0) << cs;
  ASSERT_EQ(0, std::memcmp(ft_omp.data(), ft_pool.data(), bytes))
      << "FT pool backend diverged from OpenMP at nt=" << threads << " for "
      << cs;

  Matrix<T> ori_omp = p.c.clone();
  Matrix<T> ori_pool = p.c.clone();
  call_ori(ori_omp, omp_opts);
  call_ori(ori_pool, pool_opts);
  ASSERT_EQ(0, std::memcmp(ori_omp.data(), ori_pool.data(), bytes))
      << "Ori pool backend diverged from OpenMP at nt=" << threads << " for "
      << cs;

  // And both agree with the naive oracle to rounding.
  const Matrix<T> ref = reference_result(cs, p);
  EXPECT_LE(max_abs_diff(ft_pool, ref), gemm_tolerance<T>(cs.k)) << cs;
}

TEST(BackendBitIdentity, DoubleAcrossShapeAndThreadSweep) {
  const std::vector<GemmCase> cases = {
      {128, 96, 300},                                     // multi-panel
      {97, 203, 129},                                     // ragged edges
      {17, 64, 64},                                       // idle members
      {256, 32, 512, Trans::kTrans, Trans::kNoTrans},     // At
      {64, 64, 64, Trans::kNoTrans, Trans::kTrans, -1.5, 2.0},
      {31, 29, 100, Trans::kTrans, Trans::kTrans, 0.75, 0.25},
  };
  for (const int threads : {2, 4}) {
    for (const GemmCase& cs : cases) {
      expect_backend_bit_identity<double>(cs, threads);
    }
  }
}

TEST(BackendBitIdentity, FloatSpotChecks) {
  expect_backend_bit_identity<float>({128, 96, 300}, 4);
  expect_backend_bit_identity<float>(
      {64, 64, 64, Trans::kNoTrans, Trans::kTrans, -1.5, 2.0}, 3);
}

TEST(PoolFt, InjectedFaultsCorrectedAcrossMemberBoundaries) {
  // Same scenario as ParallelFt.InjectionCorrectedAcrossThreadBoundaries,
  // but the team runs on pool workers: the Cr reduction and the rank-0
  // solve must see faults from every member's row partition.
  const GemmCase cs{128, 128, 128};
  Problem<double> p(cs);
  const Matrix<double> ref = reference_result(cs, p);
  Matrix<double> c = p.c.clone();
  DeterministicInjector inj({
      {InjectionKind::kAddDelta, 0, 5, 100, 2.0, 0},
      {InjectionKind::kAddDelta, 0, 120, 3, -7.0, 0},
  });
  Options opts;
  opts.threads = 4;
  opts.runtime = RuntimeBackend::kPool;
  opts.injector = &inj;
  const FtReport rep = ft_dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n,
                                cs.k, cs.alpha, p.a.data(), p.a.ld(),
                                p.b.data(), p.b.ld(), cs.beta, c.data(),
                                c.ld(), opts);
  EXPECT_EQ(static_cast<std::size_t>(rep.errors_corrected),
            inj.injected_count());
  EXPECT_TRUE(rep.clean());
  EXPECT_LE(max_rel_diff(c, ref), gemm_tolerance<double>(cs.k));
}

TEST(PoolBatched, InterBatchMembersRunOnPoolWorkersBitIdentically) {
  // Forced inter-batch scheduling on both backends: every member executes
  // the same serial plan, so the two schedules must agree bitwise.
  const index_t n = 48, batch = 8;
  Problem<double> p({n, n * batch, n}, 99);
  std::vector<double> c_omp(p.c.data(), p.c.data() + p.c.ld() * n * batch);
  std::vector<double> c_pool = c_omp;

  BatchOptions opts;
  opts.schedule = BatchSchedule::kInter;
  opts.inject_problem = -1;  // no injector attached — shared-sink veto moot
  opts.base.threads = 4;

  opts.base.runtime = RuntimeBackend::kOpenMP;
  const BatchReport rep_omp = ft_gemm_strided_batched<double>(
      Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n, n, n, 1.0,
      p.a.data(), p.a.ld(), 0, p.b.data(), p.b.ld(), n * p.b.ld(), 0.5,
      c_omp.data(), p.c.ld(), n * p.c.ld(), batch, opts);

  opts.base.runtime = RuntimeBackend::kPool;
  const BatchReport rep_pool = ft_gemm_strided_batched<double>(
      Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n, n, n, 1.0,
      p.a.data(), p.a.ld(), 0, p.b.data(), p.b.ld(), n * p.b.ld(), 0.5,
      c_pool.data(), p.c.ld(), n * p.c.ld(), batch, opts);

  EXPECT_TRUE(rep_omp.inter_batch);
  EXPECT_TRUE(rep_pool.inter_batch);
  EXPECT_EQ(rep_omp.dirty_problems, 0);
  EXPECT_EQ(rep_pool.dirty_problems, 0);
  ASSERT_EQ(0, std::memcmp(c_omp.data(), c_pool.data(),
                           sizeof(double) * c_omp.size()));
}

}  // namespace
}  // namespace ftgemm
