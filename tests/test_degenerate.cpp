// Degenerate- and invalid-input behavior: k == 0, alpha == 0, m/n == 0,
// and beta-only scaling must be well-defined, BLAS-conforming no-op/scale
// semantics for every entry point — dgemm/sgemm, ft_* (including
// *_reliable), and the batched forms.  The executor's `degenerate` branch
// (skip the panel loop, still apply C = beta*C) was previously untested.
// Invalid arguments (negative dimensions, undersized leading dimensions,
// negative batch counts) must make every entry point a silent no-op with
// the report's invalid_args flag set — C untouched, no crash, no abort
// (see valid_gemm_args in core/options.hpp).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/gemm_batched.hpp"
#include "test_common.hpp"

namespace ftgemm {
namespace {

/// C filled with a sentinel so any unexpected write is visible.
template <typename T>
Matrix<T> sentinel_c(index_t m, index_t n, T value = T(3)) {
  Matrix<T> c(m, n);
  c.fill(value);
  return c;
}

template <typename T>
void expect_all_eq(const Matrix<T>& c, T expected) {
  for (index_t j = 0; j < c.cols(); ++j)
    for (index_t i = 0; i < c.rows(); ++i)
      ASSERT_EQ(c(i, j), expected) << "C(" << i << ", " << j << ")";
}

template <typename T>
class DegenerateTyped : public ::testing::Test {};
using Precisions = ::testing::Types<float, double>;
TYPED_TEST_SUITE(DegenerateTyped, Precisions);

TYPED_TEST(DegenerateTyped, KZeroScalesCByBeta) {
  using T = TypeParam;
  // k == 0: op(A)*op(B) is an empty sum, so C = beta*C exactly.  A/B may be
  // null per BLAS convention (they are never dereferenced).
  const index_t m = 17, n = 11;
  for (const bool ft : {false, true}) {
    Matrix<T> c = sentinel_c<T>(m, n, T(4));
    FtReport rep;
    if constexpr (sizeof(T) == 8) {
      if (ft) {
        rep = ft_dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans,
                       m, n, 0, 2.0, nullptr, 1, nullptr, 1, 0.25, c.data(),
                       c.ld());
      } else {
        dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, 0,
              2.0, nullptr, 1, nullptr, 1, 0.25, c.data(), c.ld());
      }
    } else {
      if (ft) {
        rep = ft_sgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans,
                       m, n, 0, T(2), nullptr, 1, nullptr, 1, T(0.25),
                       c.data(), c.ld());
      } else {
        sgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, 0,
              T(2), nullptr, 1, nullptr, 1, T(0.25), c.data(), c.ld());
      }
    }
    expect_all_eq(c, T(1));
    if (ft) {
      EXPECT_EQ(rep.panels, 0) << "no rank-KC panel runs for k == 0";
      EXPECT_TRUE(rep.clean());
      EXPECT_EQ(rep.errors_detected, 0);
    }
  }
}

TYPED_TEST(DegenerateTyped, AlphaZeroScalesCByBeta) {
  using T = TypeParam;
  // alpha == 0 with k > 0: the product term vanishes, A/B must not
  // contribute (they hold NaN bait here — a path that multiplies by them
  // would poison C).
  const index_t m = 24, n = 9, k = 33;
  Matrix<T> a(m, k), b(k, n);
  a.fill(std::numeric_limits<T>::quiet_NaN());
  b.fill(std::numeric_limits<T>::quiet_NaN());
  for (const bool ft : {false, true}) {
    Matrix<T> c = sentinel_c<T>(m, n, T(8));
    FtReport rep;
    if constexpr (sizeof(T) == 8) {
      if (ft) {
        rep = ft_dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans,
                       m, n, k, 0.0, a.data(), a.ld(), b.data(), b.ld(), 0.5,
                       c.data(), c.ld());
      } else {
        dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, k,
              0.0, a.data(), a.ld(), b.data(), b.ld(), 0.5, c.data(),
              c.ld());
      }
    } else {
      if (ft) {
        rep = ft_sgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans,
                       m, n, k, T(0), a.data(), a.ld(), b.data(), b.ld(),
                       T(0.5), c.data(), c.ld());
      } else {
        sgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, k,
              T(0), a.data(), a.ld(), b.data(), b.ld(), T(0.5), c.data(),
              c.ld());
      }
    }
    expect_all_eq(c, T(4));
    if (ft) {
      EXPECT_EQ(rep.panels, 0);
      EXPECT_TRUE(rep.clean());
    }
  }
}

TYPED_TEST(DegenerateTyped, EmptyMOrNTouchesNothing) {
  using T = TypeParam;
  // m == 0 or n == 0: the result has no elements; the call must not write
  // anywhere (C here is a 4x4 canary around the "empty" problem).
  Matrix<T> c = sentinel_c<T>(4, 4, T(7));
  for (const index_t m : {index_t(0), index_t(4)}) {
    const index_t n = m == 0 ? 4 : 0;
    if constexpr (sizeof(T) == 8) {
      dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, 5,
            1.0, nullptr, 4, nullptr, 5, 0.0, c.data(), c.ld());
      const FtReport rep =
          ft_dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n,
                   5, 1.0, nullptr, 4, nullptr, 5, 0.0, c.data(), c.ld());
      EXPECT_TRUE(rep.clean());
      EXPECT_EQ(rep.panels, 0);
    } else {
      sgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, 5,
            T(1), nullptr, 4, nullptr, 5, T(0), c.data(), c.ld());
      const FtReport rep =
          ft_sgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n,
                   5, T(1), nullptr, 4, nullptr, 5, T(0), c.data(), c.ld());
      EXPECT_TRUE(rep.clean());
      EXPECT_EQ(rep.panels, 0);
    }
  }
  // An empty problem must not scale or zero the canary.
  expect_all_eq(c, T(7));
}

TEST(Degenerate, BetaZeroOverwritesUninitializedC) {
  // beta == 0 must assign, not multiply: C seeded with NaN would otherwise
  // stay NaN.  Exercises both the degenerate (k == 0) and the computing
  // path.
  const index_t m = 19, n = 13, k = 21;
  Matrix<double> a(m, k), b(k, n);
  a.fill_random(5);
  b.fill_random(6);

  Matrix<double> c(m, n);
  c.fill(std::numeric_limits<double>::quiet_NaN());
  dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, 0, 1.0,
        a.data(), a.ld(), b.data(), b.ld(), 0.0, c.data(), c.ld());
  expect_all_eq(c, 0.0);

  c.fill(std::numeric_limits<double>::quiet_NaN());
  const FtReport rep =
      ft_dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, k,
               1.0, a.data(), a.ld(), b.data(), b.ld(), 0.0, c.data(),
               c.ld());
  EXPECT_TRUE(rep.clean());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i)
      ASSERT_TRUE(std::isfinite(c(i, j))) << "C(" << i << ", " << j << ")";
}

TEST(Degenerate, ReliableVariantHandlesDegenerateInputs) {
  Matrix<double> c = sentinel_c<double>(8, 8, 2.0);
  // k == 0 through the snapshot/retry wrapper.
  const FtReport rep = ft_dgemm_reliable(
      Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, 8, 8, 0, 1.0,
      nullptr, 8, nullptr, 1, 0.5, c.data(), c.ld());
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.retries, 0);
  EXPECT_EQ(rep.panels, 0);
  expect_all_eq(c, 1.0);

  // alpha == 0, float flavor.
  Matrix<float> cf = sentinel_c<float>(6, 6, 4.0f);
  Matrix<float> af(6, 6), bf(6, 6);
  af.fill(0.0f);
  bf.fill(0.0f);
  const FtReport repf = ft_sgemm_reliable(
      Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, 6, 6, 6, 0.0f,
      af.data(), af.ld(), bf.data(), bf.ld(), 1.0f, cf.data(), cf.ld());
  EXPECT_TRUE(repf.clean());
  // alpha == 0, beta == 1 must leave C unchanged.
  expect_all_eq(cf, 4.0f);
}

TEST(Degenerate, BatchedDegenerateMembers) {
  // Batched entry points apply the same semantics per member: k == 0 and
  // alpha == 0 both reduce to C = beta*C for every member, with per-member
  // reports still emitted.
  const index_t m = 6, n = 5, batch = 4;
  const index_t sc = m * n;

  // k == 0 (array-of-pointers form).
  Matrix<double> c(m, n * batch);
  c.fill(10.0);
  std::vector<double*> cp;
  for (index_t p = 0; p < batch; ++p) cp.push_back(c.data() + p * sc);
  std::vector<const double*> ap(std::size_t(batch), nullptr);
  std::vector<const double*> bp(std::size_t(batch), nullptr);
  const BatchReport rep = ft_gemm_batched<double>(
      Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, 0, 1.0,
      ap.data(), m, bp.data(), 1, 0.1, cp.data(), m, batch);
  EXPECT_EQ(rep.problems, batch);
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(index_t(rep.per_problem.size()), batch);
  for (const FtReport& r : rep.per_problem) EXPECT_EQ(r.panels, 0);
  expect_all_eq(c, 1.0);

  // alpha == 0 (strided form), non-FT.
  Matrix<double> a(m, m * batch), b(m, n * batch), c2(m, n * batch);
  a.fill(std::numeric_limits<double>::quiet_NaN());
  b.fill(std::numeric_limits<double>::quiet_NaN());
  c2.fill(6.0);
  const BatchReport rep2 = gemm_strided_batched<double>(
      Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, m, 0.0,
      a.data(), m, m * m, b.data(), m, m * n, 0.5, c2.data(), m, sc, batch);
  EXPECT_EQ(rep2.problems, batch);
  expect_all_eq(c2, 3.0);
}

// ---------------------------------------------------------------------------
// Invalid arguments: silent no-op + invalid_args, through every entry point.
// ---------------------------------------------------------------------------

TYPED_TEST(DegenerateTyped, NegativeDimensionsRejectedEverywhere) {
  using T = TypeParam;
  const index_t bad_dims[][3] = {{-1, 4, 4}, {4, -2, 4}, {4, 4, -3}};
  Matrix<T> a(8, 8), b(8, 8);
  a.fill(T(1));
  b.fill(T(1));
  for (const auto& d : bad_dims) {
    const index_t m = d[0], n = d[1], k = d[2];
    Matrix<T> c = sentinel_c<T>(8, 8, T(5));
    FtReport rep;
    if constexpr (sizeof(T) == 8) {
      dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, k,
            1.0, a.data(), a.ld(), b.data(), b.ld(), 0.5, c.data(), c.ld());
      rep = ft_dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m,
                     n, k, 1.0, a.data(), a.ld(), b.data(), b.ld(), 0.5,
                     c.data(), c.ld());
    } else {
      sgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, k,
            T(1), a.data(), a.ld(), b.data(), b.ld(), T(0.5), c.data(),
            c.ld());
      rep = ft_sgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m,
                     n, k, T(1), a.data(), a.ld(), b.data(), b.ld(), T(0.5),
                     c.data(), c.ld());
    }
    EXPECT_TRUE(rep.invalid_args)
        << "m=" << m << " n=" << n << " k=" << k;
    EXPECT_EQ(rep.panels, 0);
    // Invalid calls are a no-op: not even the beta scaling may run.
    expect_all_eq(c, T(5));
  }
}

TYPED_TEST(DegenerateTyped, UndersizedLeadingDimensionsRejected) {
  using T = TypeParam;
  // op(A) is m x k, op(B) is k x n: each case undershoots exactly one ld.
  const index_t m = 16, n = 12, k = 20;
  Matrix<T> a(m, k), at(k, m), b(k, n);
  a.fill(T(1));
  at.fill(T(1));
  b.fill(T(1));

  struct Case {
    Trans ta;
    index_t lda, ldb, ldc;
  };
  const Case cases[] = {
      {Trans::kNoTrans, m - 1, k, m},  // lda < m (NoTrans)
      {Trans::kTrans, k - 1, k, m},    // lda < k (Trans)
      {Trans::kNoTrans, m, k - 1, m},  // ldb < k
      {Trans::kNoTrans, m, k, m - 1},  // ldc < m
  };
  for (const Case& cs : cases) {
    Matrix<T> c = sentinel_c<T>(m, n, T(9));
    const T* ap = cs.ta == Trans::kTrans ? at.data() : a.data();
    FtReport rep;
    if constexpr (sizeof(T) == 8) {
      rep = ft_dgemm(Layout::kColMajor, cs.ta, Trans::kNoTrans, m, n, k, 1.0,
                     ap, cs.lda, b.data(), cs.ldb, 0.0, c.data(), cs.ldc);
    } else {
      rep = ft_sgemm(Layout::kColMajor, cs.ta, Trans::kNoTrans, m, n, k,
                     T(1), ap, cs.lda, b.data(), cs.ldb, T(0), c.data(),
                     cs.ldc);
    }
    EXPECT_TRUE(rep.invalid_args)
        << "lda=" << cs.lda << " ldb=" << cs.ldb << " ldc=" << cs.ldc;
    expect_all_eq(c, T(9));
  }
}

TEST(InvalidArgs, EngineAndReliableRejectLikeTheFreeFunctions) {
  Matrix<double> a(8, 8), b(8, 8);
  a.fill(1.0);
  b.fill(1.0);
  Matrix<double> c = sentinel_c<double>(8, 8, 3.0);

  GemmEngine<double> engine;
  const FtReport eng = engine.ft_gemm(Layout::kColMajor, Trans::kNoTrans,
                                      Trans::kNoTrans, -4, 8, 8, 1.0,
                                      a.data(), a.ld(), b.data(), b.ld(),
                                      0.0, c.data(), c.ld());
  EXPECT_TRUE(eng.invalid_args);
  expect_all_eq(c, 3.0);

  // The reliable wrapper must reject *before* sizing its snapshot from the
  // negative geometry.
  const FtReport rel = ft_dgemm_reliable(
      Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, 8, -8, 8, 1.0,
      a.data(), a.ld(), b.data(), b.ld(), 0.0, c.data(), c.ld());
  EXPECT_TRUE(rel.invalid_args);
  EXPECT_EQ(rel.retries, 0);
  expect_all_eq(c, 3.0);

  // Row-major validation applies the swapped (normalized) rules: for a
  // row-major NoTrans/NoTrans call, lda must cover k, not m.
  const FtReport rm = ft_dgemm(Layout::kRowMajor, Trans::kNoTrans,
                               Trans::kNoTrans, 8, 8, 8, 1.0, a.data(), 4,
                               b.data(), 8, 0.0, c.data(), 8);
  EXPECT_TRUE(rm.invalid_args);
  expect_all_eq(c, 3.0);
}

TEST(InvalidArgs, BatchedFormsRejectNegativeGeometry) {
  const index_t m = 6, n = 5;
  Matrix<double> c = sentinel_c<double>(m, n, 2.0);
  Matrix<double> a(m, m), b(m, n);
  a.fill(1.0);
  b.fill(1.0);

  // Negative batch count (strided form).
  const BatchReport neg_batch = ft_gemm_strided_batched<double>(
      Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, m, 1.0,
      a.data(), m, 0, b.data(), m, 0, 0.0, c.data(), m, 0, -2);
  EXPECT_TRUE(neg_batch.invalid_args);
  EXPECT_EQ(neg_batch.problems, 0);
  expect_all_eq(c, 2.0);

  // Negative member dimension (array-of-pointers form).
  const double* ap[] = {a.data()};
  const double* bp[] = {b.data()};
  double* cp[] = {c.data()};
  const BatchReport neg_dim = ft_gemm_batched<double>(
      Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, -n, m, 1.0, ap,
      m, bp, m, 0.0, cp, m, 1);
  EXPECT_TRUE(neg_dim.invalid_args);
  EXPECT_EQ(neg_dim.problems, 0);
  expect_all_eq(c, 2.0);

  // Undersized ldc (non-FT strided form): same contract, no report fields
  // beyond the flag.
  const BatchReport bad_ld = gemm_strided_batched<double>(
      Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, m, 1.0,
      a.data(), m, 0, b.data(), m, 0, 0.0, c.data(), m - 1, 0, 2);
  EXPECT_TRUE(bad_ld.invalid_args);
  expect_all_eq(c, 2.0);
}

TEST(InvalidArgs, InvalidOptionCombinationsAreClampedNotFatal) {
  // Options fields outside their domains must resolve to defaults, not
  // crash or poison the plan cache: negative threads behave like "unset"
  // (auto topology), a negative tolerance factor falls back to the library
  // default, and both produce correct, clean results.
  const testing::GemmCase cs{48, 40, 64};
  testing::Problem<double> p(cs);
  const Matrix<double> ref = testing::reference_result(cs, p);

  Options opts;
  opts.threads = -3;
  opts.tolerance_factor = -1e6;
  Matrix<double> c = p.c.clone();
  const FtReport rep = ft_dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n,
                                cs.k, cs.alpha, p.a.data(), p.a.ld(),
                                p.b.data(), p.b.ld(), cs.beta, c.data(),
                                c.ld(), opts);
  EXPECT_FALSE(rep.invalid_args);
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.errors_detected, 0)
      << "a negative tolerance factor must fall back to the default, not "
         "flag rounding noise";
  testing::expect_matrix_near(c, ref, testing::gemm_tolerance<double>(cs.k),
                              "clamped-options result");
}

}  // namespace
}  // namespace ftgemm
