// Degenerate-input behavior: k == 0, alpha == 0, m/n == 0, and beta-only
// scaling must be well-defined, BLAS-conforming no-op/scale semantics for
// every entry point — dgemm/sgemm, ft_* (including *_reliable), and the
// batched forms.  The executor's `degenerate` branch (skip the panel loop,
// still apply C = beta*C) was previously untested.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/gemm_batched.hpp"
#include "test_common.hpp"

namespace ftgemm {
namespace {

/// C filled with a sentinel so any unexpected write is visible.
template <typename T>
Matrix<T> sentinel_c(index_t m, index_t n, T value = T(3)) {
  Matrix<T> c(m, n);
  c.fill(value);
  return c;
}

template <typename T>
void expect_all_eq(const Matrix<T>& c, T expected) {
  for (index_t j = 0; j < c.cols(); ++j)
    for (index_t i = 0; i < c.rows(); ++i)
      ASSERT_EQ(c(i, j), expected) << "C(" << i << ", " << j << ")";
}

template <typename T>
class DegenerateTyped : public ::testing::Test {};
using Precisions = ::testing::Types<float, double>;
TYPED_TEST_SUITE(DegenerateTyped, Precisions);

TYPED_TEST(DegenerateTyped, KZeroScalesCByBeta) {
  using T = TypeParam;
  // k == 0: op(A)*op(B) is an empty sum, so C = beta*C exactly.  A/B may be
  // null per BLAS convention (they are never dereferenced).
  const index_t m = 17, n = 11;
  for (const bool ft : {false, true}) {
    Matrix<T> c = sentinel_c<T>(m, n, T(4));
    FtReport rep;
    if constexpr (sizeof(T) == 8) {
      if (ft) {
        rep = ft_dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans,
                       m, n, 0, 2.0, nullptr, 1, nullptr, 1, 0.25, c.data(),
                       c.ld());
      } else {
        dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, 0,
              2.0, nullptr, 1, nullptr, 1, 0.25, c.data(), c.ld());
      }
    } else {
      if (ft) {
        rep = ft_sgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans,
                       m, n, 0, T(2), nullptr, 1, nullptr, 1, T(0.25),
                       c.data(), c.ld());
      } else {
        sgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, 0,
              T(2), nullptr, 1, nullptr, 1, T(0.25), c.data(), c.ld());
      }
    }
    expect_all_eq(c, T(1));
    if (ft) {
      EXPECT_EQ(rep.panels, 0) << "no rank-KC panel runs for k == 0";
      EXPECT_TRUE(rep.clean());
      EXPECT_EQ(rep.errors_detected, 0);
    }
  }
}

TYPED_TEST(DegenerateTyped, AlphaZeroScalesCByBeta) {
  using T = TypeParam;
  // alpha == 0 with k > 0: the product term vanishes, A/B must not
  // contribute (they hold NaN bait here — a path that multiplies by them
  // would poison C).
  const index_t m = 24, n = 9, k = 33;
  Matrix<T> a(m, k), b(k, n);
  a.fill(std::numeric_limits<T>::quiet_NaN());
  b.fill(std::numeric_limits<T>::quiet_NaN());
  for (const bool ft : {false, true}) {
    Matrix<T> c = sentinel_c<T>(m, n, T(8));
    FtReport rep;
    if constexpr (sizeof(T) == 8) {
      if (ft) {
        rep = ft_dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans,
                       m, n, k, 0.0, a.data(), a.ld(), b.data(), b.ld(), 0.5,
                       c.data(), c.ld());
      } else {
        dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, k,
              0.0, a.data(), a.ld(), b.data(), b.ld(), 0.5, c.data(),
              c.ld());
      }
    } else {
      if (ft) {
        rep = ft_sgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans,
                       m, n, k, T(0), a.data(), a.ld(), b.data(), b.ld(),
                       T(0.5), c.data(), c.ld());
      } else {
        sgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, k,
              T(0), a.data(), a.ld(), b.data(), b.ld(), T(0.5), c.data(),
              c.ld());
      }
    }
    expect_all_eq(c, T(4));
    if (ft) {
      EXPECT_EQ(rep.panels, 0);
      EXPECT_TRUE(rep.clean());
    }
  }
}

TYPED_TEST(DegenerateTyped, EmptyMOrNTouchesNothing) {
  using T = TypeParam;
  // m == 0 or n == 0: the result has no elements; the call must not write
  // anywhere (C here is a 4x4 canary around the "empty" problem).
  Matrix<T> c = sentinel_c<T>(4, 4, T(7));
  for (const index_t m : {index_t(0), index_t(4)}) {
    const index_t n = m == 0 ? 4 : 0;
    if constexpr (sizeof(T) == 8) {
      dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, 5,
            1.0, nullptr, 4, nullptr, 5, 0.0, c.data(), c.ld());
      const FtReport rep =
          ft_dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n,
                   5, 1.0, nullptr, 4, nullptr, 5, 0.0, c.data(), c.ld());
      EXPECT_TRUE(rep.clean());
      EXPECT_EQ(rep.panels, 0);
    } else {
      sgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, 5,
            T(1), nullptr, 4, nullptr, 5, T(0), c.data(), c.ld());
      const FtReport rep =
          ft_sgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n,
                   5, T(1), nullptr, 4, nullptr, 5, T(0), c.data(), c.ld());
      EXPECT_TRUE(rep.clean());
      EXPECT_EQ(rep.panels, 0);
    }
  }
  // An empty problem must not scale or zero the canary.
  expect_all_eq(c, T(7));
}

TEST(Degenerate, BetaZeroOverwritesUninitializedC) {
  // beta == 0 must assign, not multiply: C seeded with NaN would otherwise
  // stay NaN.  Exercises both the degenerate (k == 0) and the computing
  // path.
  const index_t m = 19, n = 13, k = 21;
  Matrix<double> a(m, k), b(k, n);
  a.fill_random(5);
  b.fill_random(6);

  Matrix<double> c(m, n);
  c.fill(std::numeric_limits<double>::quiet_NaN());
  dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, 0, 1.0,
        a.data(), a.ld(), b.data(), b.ld(), 0.0, c.data(), c.ld());
  expect_all_eq(c, 0.0);

  c.fill(std::numeric_limits<double>::quiet_NaN());
  const FtReport rep =
      ft_dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, k,
               1.0, a.data(), a.ld(), b.data(), b.ld(), 0.0, c.data(),
               c.ld());
  EXPECT_TRUE(rep.clean());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i)
      ASSERT_TRUE(std::isfinite(c(i, j))) << "C(" << i << ", " << j << ")";
}

TEST(Degenerate, ReliableVariantHandlesDegenerateInputs) {
  Matrix<double> c = sentinel_c<double>(8, 8, 2.0);
  // k == 0 through the snapshot/retry wrapper.
  const FtReport rep = ft_dgemm_reliable(
      Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, 8, 8, 0, 1.0,
      nullptr, 8, nullptr, 1, 0.5, c.data(), c.ld());
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.retries, 0);
  EXPECT_EQ(rep.panels, 0);
  expect_all_eq(c, 1.0);

  // alpha == 0, float flavor.
  Matrix<float> cf = sentinel_c<float>(6, 6, 4.0f);
  Matrix<float> af(6, 6), bf(6, 6);
  af.fill(0.0f);
  bf.fill(0.0f);
  const FtReport repf = ft_sgemm_reliable(
      Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, 6, 6, 6, 0.0f,
      af.data(), af.ld(), bf.data(), bf.ld(), 1.0f, cf.data(), cf.ld());
  EXPECT_TRUE(repf.clean());
  // alpha == 0, beta == 1 must leave C unchanged.
  expect_all_eq(cf, 4.0f);
}

TEST(Degenerate, BatchedDegenerateMembers) {
  // Batched entry points apply the same semantics per member: k == 0 and
  // alpha == 0 both reduce to C = beta*C for every member, with per-member
  // reports still emitted.
  const index_t m = 6, n = 5, batch = 4;
  const index_t sc = m * n;

  // k == 0 (array-of-pointers form).
  Matrix<double> c(m, n * batch);
  c.fill(10.0);
  std::vector<double*> cp;
  for (index_t p = 0; p < batch; ++p) cp.push_back(c.data() + p * sc);
  std::vector<const double*> ap(std::size_t(batch), nullptr);
  std::vector<const double*> bp(std::size_t(batch), nullptr);
  const BatchReport rep = ft_gemm_batched<double>(
      Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, 0, 1.0,
      ap.data(), m, bp.data(), 1, 0.1, cp.data(), m, batch);
  EXPECT_EQ(rep.problems, batch);
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(index_t(rep.per_problem.size()), batch);
  for (const FtReport& r : rep.per_problem) EXPECT_EQ(r.panels, 0);
  expect_all_eq(c, 1.0);

  // alpha == 0 (strided form), non-FT.
  Matrix<double> a(m, m * batch), b(m, n * batch), c2(m, n * batch);
  a.fill(std::numeric_limits<double>::quiet_NaN());
  b.fill(std::numeric_limits<double>::quiet_NaN());
  c2.fill(6.0);
  const BatchReport rep2 = gemm_strided_batched<double>(
      Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, m, 0.0,
      a.data(), m, m * m, b.data(), m, m * n, 0.5, c2.data(), m, sc, batch);
  EXPECT_EQ(rep2.problems, batch);
  expect_all_eq(c2, 3.0);
}

}  // namespace
}  // namespace ftgemm
