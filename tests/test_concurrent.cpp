// Concurrent application threads as first-class submitters: N std::threads
// issue mixed (FT-)GEMM entry points simultaneously against the process-wide
// leased context pool, every result is verified, and the pool's accounting
// must balance afterwards.  This is the serving regime the context-leasing
// and team-runtime layers exist for — before them, the free functions were
// only safe per-thread, and the batched scheduler nested OpenMP regions.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "core/context.hpp"
#include "core/gemm_batched.hpp"
#include "test_common.hpp"

namespace ftgemm {
namespace {

using testing::GemmCase;
using testing::Problem;
using testing::gemm_tolerance;
using testing::reference_result;

/// One submitter's workload: a fixed rotation of entry points, precisions,
/// and team backends, each call verified against the naive oracle.  All
/// shapes are deterministic functions of (id, iter) so failures reproduce.
void submitter(int id, int iters, std::atomic<int>& failures) {
  const auto note = [&](bool ok) {
    if (!ok) failures.fetch_add(1);
  };
  for (int it = 0; it < iters; ++it) {
    Options opts;
    opts.threads = 1 + (id + it) % 3;  // 1..3-member teams
    opts.runtime = (id + it) % 2 == 0 ? RuntimeBackend::kPool
                                      : RuntimeBackend::kOpenMP;
    const std::uint64_t seed = std::uint64_t(1000 * id + it);
    switch ((id + it) % 4) {
      case 0: {  // ft_dgemm, multi-panel shape
        const GemmCase cs{96 + 8 * (id % 3), 80, 260};
        Problem<double> p(cs, seed);
        const Matrix<double> ref = reference_result(cs, p);
        Matrix<double> c = p.c.clone();
        const FtReport rep = ft_dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m,
                                      cs.n, cs.k, cs.alpha, p.a.data(),
                                      p.a.ld(), p.b.data(), p.b.ld(),
                                      cs.beta, c.data(), c.ld(), opts);
        note(rep.clean() && rep.errors_detected == 0);
        note(max_rel_diff(c, ref) <= gemm_tolerance<double>(cs.k));
        break;
      }
      case 1: {  // ft_sgemm, small protected GEMM (fast-path regime)
        const GemmCase cs{48, 40, 64, Trans::kNoTrans, Trans::kTrans, 1.25,
                          -0.5};
        Problem<float> p(cs, seed);
        const Matrix<float> ref = reference_result(cs, p);
        Matrix<float> c = p.c.clone();
        const FtReport rep = ft_sgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m,
                                      cs.n, cs.k, float(cs.alpha),
                                      p.a.data(), p.a.ld(), p.b.data(),
                                      p.b.ld(), float(cs.beta), c.data(),
                                      c.ld(), opts);
        note(rep.clean());
        note(max_rel_diff(c, ref) <= gemm_tolerance<float>(cs.k));
        break;
      }
      case 2: {  // ft_dgemm_reliable
        const GemmCase cs{64, 96, 150, Trans::kTrans, Trans::kNoTrans};
        Problem<double> p(cs, seed);
        const Matrix<double> ref = reference_result(cs, p);
        Matrix<double> c = p.c.clone();
        const FtReport rep = ft_dgemm_reliable(
            Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
            p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), cs.beta, c.data(),
            c.ld(), opts);
        note(rep.clean());
        note(max_rel_diff(c, ref) <= gemm_tolerance<double>(cs.k));
        break;
      }
      default: {  // strided-batched FT, inter-batch teams on the runtime
        const index_t n = 32, batch = 6;
        const GemmCase whole{n, n * batch, n};
        Problem<double> p(whole, seed);
        const Matrix<double> ref = reference_result(whole, p);
        Matrix<double> c = p.c.clone();
        BatchOptions bopts;
        bopts.base = opts;
        bopts.base.threads = 2;
        bopts.inject_problem = -1;
        const BatchReport rep = ft_gemm_strided_batched<double>(
            Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n, n, n,
            1.0, p.a.data(), p.a.ld(), 0, p.b.data(), p.b.ld(),
            n * p.b.ld(), 0.0, c.data(), c.ld(), n * c.ld(), batch, bopts);
        note(rep.problems == batch && rep.dirty_problems == 0);
        // The broadcast-A strided batch computes the same values as one
        // wide GEMM against B's concatenated panels.
        note(max_rel_diff(c, ref) <= gemm_tolerance<double>(n));
        break;
      }
    }
  }
}

TEST(ConcurrentSubmitters, MixedEntryPointsAllVerified) {
  const int kThreads = 6;
  const int kIters = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int id = 0; id < kThreads; ++id) {
    threads.emplace_back(submitter, id, kIters, std::ref(failures));
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0)
      << failures.load() << " verification failures across "
      << kThreads * kIters << " concurrent calls";

  // Every lease returned: the pool's accounting balances once all
  // submitters are done, and workspace count is bounded by the peak
  // concurrency, not by total call volume.
  EXPECT_EQ(process_context_cache<double>().outstanding(), 0);
  EXPECT_EQ(process_context_cache<float>().outstanding(), 0);
  EXPECT_LE(process_context_cache<float>().size(), kThreads);
}

TEST(ConcurrentSubmitters, RecurringShapeIsPlannedOnceProcessWide) {
  // Hammer one fingerprint from many threads: the shared PlanCache must
  // build it exactly once — the misses a per-thread cache would multiply.
  const GemmCase cs{64, 64, 64};
  Problem<float> p(cs, 5);
  const std::uint64_t misses_before =
      process_context_cache<float>().plan_misses();

  const int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int id = 0; id < kThreads; ++id) {
    threads.emplace_back([&] {
      for (int it = 0; it < 4; ++it) {
        Matrix<float> c = p.c.clone();
        Options opts;
        opts.threads = 1;
        sgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k,
              float(cs.alpha), p.a.data(), p.a.ld(), p.b.data(), p.b.ld(),
              float(cs.beta), c.data(), c.ld(), opts);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(process_context_cache<float>().plan_misses(), misses_before + 1)
      << "32 concurrent calls of one shape must plan exactly once";
  EXPECT_EQ(process_context_cache<float>().outstanding(), 0);
}

}  // namespace
}  // namespace ftgemm
