// Integration tests: single-precision sgemm / ft_sgemm against the oracle.
#include <gtest/gtest.h>

#include "inject/injectors.hpp"
#include "test_common.hpp"

namespace ftgemm {
namespace {

using testing::GemmCase;
using testing::Problem;
using testing::expect_matrix_near;
using testing::gemm_tolerance;
using testing::naive_ref_gemm;
using testing::reference_result;

class SgemmSweep : public ::testing::TestWithParam<GemmCase> {};

TEST_P(SgemmSweep, MatchesNaiveOracle) {
  const GemmCase cs = GetParam();
  Problem<float> p(cs);
  const Matrix<float> ref = reference_result(cs, p);
  Matrix<float> c = p.c.clone();
  sgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, float(cs.alpha),
        p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), float(cs.beta), c.data(),
        c.ld());
  expect_matrix_near(c, ref, gemm_tolerance<float>(cs.k), cs.name());
}

TEST_P(SgemmSweep, FtMatchesOriBitwiseAndReportsClean) {
  const GemmCase cs = GetParam();
  Problem<float> p(cs);
  Matrix<float> c_ori = p.c.clone();
  sgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, float(cs.alpha),
        p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), float(cs.beta),
        c_ori.data(), c_ori.ld());
  Matrix<float> c_ft = p.c.clone();
  const FtReport rep = ft_sgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n,
                                cs.k, float(cs.alpha), p.a.data(), p.a.ld(),
                                p.b.data(), p.b.ld(), float(cs.beta),
                                c_ft.data(), c_ft.ld());
  // The FT kernels perform the identical FMA sequence, so results agree
  // bitwise with the unprotected path.
  expect_matrix_near(c_ft, c_ori, 0.0, "FT vs Ori " + cs.name());
  EXPECT_TRUE(rep.clean()) << cs;
  EXPECT_EQ(rep.errors_detected, 0) << "no injection -> no detections";
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SgemmSweep,
    ::testing::Values(
        GemmCase{1, 1, 1}, GemmCase{31, 9, 65}, GemmCase{32, 8, 64},
        GemmCase{33, 7, 63}, GemmCase{96, 96, 96},
        GemmCase{129, 127, 130}, GemmCase{200, 100, 50},
        GemmCase{63, 65, 257, Trans::kTrans, Trans::kNoTrans},
        GemmCase{63, 65, 257, Trans::kNoTrans, Trans::kTrans},
        GemmCase{64, 64, 64, Trans::kTrans, Trans::kTrans, -1.5, 0.5},
        GemmCase{77, 77, 77, Trans::kNoTrans, Trans::kNoTrans, 2.0, 1.0}),
    [](const auto& info) { return GemmCase(info.param).name(); });

TEST(Sgemm, FtCorrectsInjectedErrors) {
  const index_t sz = 96;
  Matrix<float> a(sz, sz), b(sz, sz), c(sz, sz);
  a.fill_random(81);
  b.fill_random(82);
  c.fill_random(83);
  Matrix<float> ref = c.clone();
  naive_ref_gemm<float>(Trans::kNoTrans, Trans::kNoTrans, sz, sz, sz, 1.0f,
                        a.data(), sz, b.data(), sz, 1.0f, ref.data(), sz);

  CountInjector inj(5, 99, 2.0);
  Options opts;
  opts.injector = &inj;
  const FtReport rep = ft_sgemm(Layout::kColMajor, Trans::kNoTrans,
                                Trans::kNoTrans, sz, sz, sz, 1.0f, a.data(),
                                sz, b.data(), sz, 1.0f, c.data(), sz, opts);
  EXPECT_EQ(static_cast<std::size_t>(rep.errors_corrected), inj.injected_count());
  EXPECT_TRUE(rep.clean());
  expect_matrix_near(c, ref, gemm_tolerance<float>(sz), "corrected C");
}

}  // namespace
}  // namespace ftgemm
