// Integration tests: the high-performance dgemm ("Ori") against the naive
// oracle, across shapes, transposes, scalars, layouts and ISAs.
#include <gtest/gtest.h>

#include "arch/cpu_features.hpp"
#include "test_common.hpp"

namespace ftgemm {
namespace {

using testing::GemmCase;
using testing::Problem;
using testing::expect_matrix_near;
using testing::gemm_tolerance;
using testing::naive_ref_gemm;
using testing::reference_result;

class DgemmSweep : public ::testing::TestWithParam<GemmCase> {};

TEST_P(DgemmSweep, MatchesNaiveOracle) {
  const GemmCase cs = GetParam();
  Problem<double> p(cs);
  const Matrix<double> ref = reference_result(cs, p);

  Matrix<double> c = p.c.clone();
  dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
        p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), cs.beta, c.data(),
        c.ld());
  expect_matrix_near(c, ref, gemm_tolerance<double>(cs.k), cs.name());
}

// Shapes chosen to stress every edge path: micro-tile remainders in M and N,
// KC panel remainders in K, single-row/column cases, tall/flat aspect
// ratios, and sizes spanning several cache-blocking regimes.
INSTANTIATE_TEST_SUITE_P(
    Shapes, DgemmSweep,
    ::testing::Values(
        GemmCase{1, 1, 1}, GemmCase{2, 3, 4}, GemmCase{16, 8, 64},
        GemmCase{17, 9, 65}, GemmCase{15, 7, 63}, GemmCase{33, 1, 10},
        GemmCase{1, 33, 10}, GemmCase{10, 10, 1}, GemmCase{128, 128, 128},
        GemmCase{129, 127, 130}, GemmCase{97, 101, 103},
        GemmCase{64, 512, 32}, GemmCase{512, 64, 32}, GemmCase{31, 29, 512},
        GemmCase{200, 300, 400}, GemmCase{257, 255, 256}),
    [](const auto& info) { return GemmCase(info.param).name(); });

INSTANTIATE_TEST_SUITE_P(
    TransposeCombos, DgemmSweep,
    ::testing::Values(
        GemmCase{65, 43, 87, Trans::kTrans, Trans::kNoTrans},
        GemmCase{65, 43, 87, Trans::kNoTrans, Trans::kTrans},
        GemmCase{65, 43, 87, Trans::kTrans, Trans::kTrans},
        GemmCase{128, 128, 128, Trans::kTrans, Trans::kTrans},
        GemmCase{17, 130, 64, Trans::kTrans, Trans::kNoTrans},
        GemmCase{130, 17, 64, Trans::kNoTrans, Trans::kTrans}),
    [](const auto& info) { return GemmCase(info.param).name(); });

INSTANTIATE_TEST_SUITE_P(
    ScalarCombos, DgemmSweep,
    ::testing::Values(
        GemmCase{60, 60, 60, Trans::kNoTrans, Trans::kNoTrans, 0.0, 0.0},
        GemmCase{60, 60, 60, Trans::kNoTrans, Trans::kNoTrans, 0.0, 2.0},
        GemmCase{60, 60, 60, Trans::kNoTrans, Trans::kNoTrans, 1.0, 1.0},
        GemmCase{60, 60, 60, Trans::kNoTrans, Trans::kNoTrans, -1.5, 0.5},
        GemmCase{60, 60, 60, Trans::kNoTrans, Trans::kNoTrans, 2.0, -1.0},
        GemmCase{60, 60, 60, Trans::kTrans, Trans::kTrans, -2.25, 3.0}),
    [](const auto& info) { return GemmCase(info.param).name(); });

TEST(Dgemm, RowMajorMatchesColMajorTransposition) {
  const index_t m = 37, n = 29, k = 41;
  // Row-major A (m x k): store as col-major (k x m) transposed view.
  Matrix<double> a_rm(k, m), b_rm(n, k), c_rm(n, m);
  a_rm.fill_random(61);
  b_rm.fill_random(62);
  c_rm.fill_random(63);

  // Row-major call: leading dimension is the row length.
  Matrix<double> c_test = c_rm.clone();
  dgemm(Layout::kRowMajor, Trans::kNoTrans, Trans::kNoTrans, m, n, k, 1.0,
        a_rm.data(), a_rm.ld(), b_rm.data(), b_rm.ld(), 0.5, c_test.data(),
        c_test.ld());

  // Oracle: the row-major matrices reinterpreted as column-major are the
  // transposes, so C_cmᵀ = Bᵀ·Aᵀ i.e. naive(n, m, k) on swapped operands.
  Matrix<double> ref = c_rm.clone();
  naive_ref_gemm<double>(Trans::kNoTrans, Trans::kNoTrans, n, m, k, 1.0,
                         b_rm.data(), b_rm.ld(), a_rm.data(), a_rm.ld(), 0.5,
                         ref.data(), ref.ld());
  expect_matrix_near(c_test, ref, gemm_tolerance<double>(k), "row-major");
}

TEST(Dgemm, NonTightLeadingDimensions) {
  const GemmCase cs{70, 50, 90};
  Problem<double> p(cs, 71, /*ld_slack=*/13);
  const Matrix<double> ref = reference_result(cs, p);
  Matrix<double> c = p.c.clone();
  dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
        p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), cs.beta, c.data(),
        c.ld());
  expect_matrix_near(c, ref, gemm_tolerance<double>(cs.k), "ld slack");
}

TEST(Dgemm, ZeroSizedProblemsAreNoOps) {
  Matrix<double> a(4, 4), b(4, 4), c(4, 4);
  a.fill_random(1);
  b.fill_random(2);
  c.fill_random(3);
  Matrix<double> before = c.clone();
  dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, 0, 4, 4, 1.0,
        a.data(), 4, b.data(), 4, 1.0, c.data(), 4);
  dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, 4, 0, 4, 1.0,
        a.data(), 4, b.data(), 4, 1.0, c.data(), 4);
  expect_matrix_near(c, before, 0.0, "zero-sized no-op");
}

TEST(Dgemm, KZeroScalesOnly) {
  Matrix<double> a(4, 1), b(1, 4), c(4, 4);
  c.fill(2.0);
  dgemm(Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, 4, 4, 0, 1.0,
        a.data(), 4, b.data(), 1, 0.5, c.data(), 4);
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(c(i, j), 1.0);
}

class DgemmIsaSweep : public ::testing::TestWithParam<Isa> {};

TEST_P(DgemmIsaSweep, EveryIsaMatchesOracle) {
  const Isa isa = GetParam();
  if (isa == Isa::kAvx512 && !cpu_features().has_avx512_kernel_support())
    GTEST_SKIP() << "no AVX-512 on this machine";
  if (isa == Isa::kAvx2 && !cpu_features().has_avx2_kernel_support())
    GTEST_SKIP() << "no AVX2 on this machine";

  const GemmCase cs{131, 77, 200, Trans::kNoTrans, Trans::kTrans, 1.25, 0.5};
  Problem<double> p(cs);
  const Matrix<double> ref = reference_result(cs, p);
  Matrix<double> c = p.c.clone();
  Options opts;
  opts.isa = isa;
  dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
        p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), cs.beta, c.data(), c.ld(),
        opts);
  expect_matrix_near(c, ref, gemm_tolerance<double>(cs.k),
                     std::string(isa_name(isa)));
}

INSTANTIATE_TEST_SUITE_P(AllIsas, DgemmIsaSweep,
                         ::testing::Values(Isa::kScalar, Isa::kAvx2,
                                           Isa::kAvx512),
                         [](const auto& info) {
                           return std::string(isa_name(info.param));
                         });

}  // namespace
}  // namespace ftgemm
