// Randomized property sweeps ("fuzz"): arbitrary shapes, scalars,
// transposes and fault patterns — deterministic by default.  The sweep
// seeds derive from FTGEMM_TEST_SEED (unset = the fixed suite default, so
// every run replays the same cases); a failing expectation prints the seed
// to reproduce with.  The whole binary stays under the `slow` ctest label.
// Each iteration asserts the two core invariants end-to-end:
//   (1) ft_dgemm equals the naive oracle on clean runs,
//   (2) under random injection the result is either corrected to the
//       oracle or the report flags the run — never silently wrong.
// Also pins the correction log to the injector's ground truth.
#include <gtest/gtest.h>

#include <algorithm>
#include <type_traits>
#include <vector>

#include "test_common.hpp"
#include "core/gemm_i8.hpp"
#include "inject/injectors.hpp"

namespace ftgemm {
namespace {

using testing::GemmCase;
using testing::Problem;
using testing::expect_matrix_near;
using testing::gemm_tolerance;
using testing::reference_result;
using testing::seed_note;

/// Eight sweep seeds fanned out from the base seed.  The default base (11,
/// stride 11) reproduces the suite's historical fixed seeds exactly;
/// FTGEMM_TEST_SEED=<base> replays any CI failure locally.
std::vector<std::uint64_t> sweep_seeds() {
  const std::uint64_t base = testing::test_seed(11);
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 8; ++i) seeds.push_back(base + 11 * i);
  return seeds;
}

GemmCase random_case(Xoshiro256& rng) {
  GemmCase cs{1 + index_t(rng.bounded(200)), 1 + index_t(rng.bounded(200)),
              1 + index_t(rng.bounded(300))};
  cs.ta = rng.uniform() < 0.5 ? Trans::kNoTrans : Trans::kTrans;
  cs.tb = rng.uniform() < 0.5 ? Trans::kNoTrans : Trans::kTrans;
  const double alphas[] = {1.0, -1.0, 0.5, 2.0, 0.0};
  const double betas[] = {0.0, 1.0, -0.5, 2.0};
  cs.alpha = alphas[rng.bounded(5)];
  cs.beta = betas[rng.bounded(4)];
  return cs;
}

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, CleanRunsMatchOracle) {
  Xoshiro256 rng(GetParam());
  for (int iter = 0; iter < 8; ++iter) {
    const GemmCase cs = random_case(rng);
    Problem<double> p(cs, rng.next());
    const Matrix<double> ref = reference_result(cs, p);
    Matrix<double> c = p.c.clone();
    const FtReport rep = ft_dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m,
                                  cs.n, cs.k, cs.alpha, p.a.data(), p.a.ld(),
                                  p.b.data(), p.b.ld(), cs.beta, c.data(),
                                  c.ld());
    EXPECT_TRUE(rep.clean()) << cs << seed_note(GetParam());
    EXPECT_EQ(rep.errors_detected, 0) << cs << seed_note(GetParam());
    expect_matrix_near(c, ref, gemm_tolerance<double>(cs.k),
                       cs.name() + seed_note(GetParam()));
  }
}

TEST_P(FuzzSweep, InjectedRunsNeverSilentlyWrong) {
  Xoshiro256 rng(GetParam() ^ 0xABCDEF);
  for (int iter = 0; iter < 6; ++iter) {
    GemmCase cs = random_case(rng);
    // Injection needs a non-degenerate product.
    cs.alpha = cs.alpha == 0.0 ? 1.0 : cs.alpha;
    cs.m = std::max<index_t>(cs.m, 8);
    cs.n = std::max<index_t>(cs.n, 8);
    cs.k = std::max<index_t>(cs.k, 8);
    Problem<double> p(cs, rng.next());
    const Matrix<double> ref = reference_result(cs, p);
    Matrix<double> c = p.c.clone();
    CountInjector inj(int(1 + rng.bounded(8)), rng.next(), 5.0);
    Options opts;
    opts.injector = &inj;
    const FtReport rep = ft_dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m,
                                  cs.n, cs.k, cs.alpha, p.a.data(), p.a.ld(),
                                  p.b.data(), p.b.ld(), cs.beta, c.data(),
                                  c.ld(), opts);
    const double err = max_rel_diff(c, ref);
    if (rep.clean()) {
      EXPECT_LE(err, std::max(gemm_tolerance<double>(cs.k), 1e-10))
          << cs << " injected=" << inj.injected_count()
          << seed_note(GetParam());
    }
    // Dirty reports are allowed (pathological patterns) — silent corruption
    // is not: a large error with a clean report is the only failure mode.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::ValuesIn(sweep_seeds()));

/// Mixed-precision sweep: the same clean-run property for narrow-storage
/// (bf16/fp16) operands with fp32 accumulation.  The oracle is the naive
/// fp32 GEMM over the *widened* operands — quantized narrow values are
/// exact fp32 numbers, so only accumulation order differs and the fp32
/// rounding budget applies (DESIGN.md §10).
template <typename S>
void mixed_clean_runs_match_oracle(std::uint64_t seed) {
  Xoshiro256 rng(seed ^ 0x5AD0);
  for (int iter = 0; iter < 6; ++iter) {
    const GemmCase cs = random_case(rng);
    const std::uint64_t pseed = rng.next();
    const auto [am, an] = testing::a_dims(cs);
    const auto [bm, bn] = testing::b_dims(cs);
    Matrix<S> a(am, an), b(bm, bn);
    Matrix<float> c(cs.m, cs.n);
    a.fill_random(pseed);
    b.fill_random(pseed + 1);
    c.fill_random(pseed + 2);

    Matrix<float> wa(am, an), wb(bm, bn);
    for (index_t j = 0; j < an; ++j)
      for (index_t i = 0; i < am; ++i) wa(i, j) = float(a(i, j));
    for (index_t j = 0; j < bn; ++j)
      for (index_t i = 0; i < bm; ++i) wb(i, j) = float(b(i, j));
    Matrix<float> ref = c.clone();
    testing::naive_ref_gemm<float>(cs.ta, cs.tb, cs.m, cs.n, cs.k,
                                   float(cs.alpha), wa.data(), wa.ld(),
                                   wb.data(), wb.ld(), float(cs.beta),
                                   ref.data(), ref.ld());

    Matrix<float> got = c.clone();
    FtReport rep;
    if constexpr (std::is_same_v<S, bf16_t>) {
      rep = ft_gemm_bf16(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k,
                         float(cs.alpha), a.data(), a.ld(), b.data(), b.ld(),
                         float(cs.beta), got.data(), got.ld());
    } else {
      rep = ft_gemm_f16(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k,
                        float(cs.alpha), a.data(), a.ld(), b.data(), b.ld(),
                        float(cs.beta), got.data(), got.ld());
    }
    EXPECT_TRUE(rep.clean()) << cs << seed_note(seed);
    EXPECT_EQ(rep.errors_detected, 0) << cs << seed_note(seed);
    expect_matrix_near(got, ref, gemm_tolerance<float>(cs.k),
                       cs.name() + seed_note(seed));
  }
}

class MixedFuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MixedFuzzSweep, Bf16CleanRunsMatchWidenedOracle) {
  mixed_clean_runs_match_oracle<bf16_t>(GetParam());
}

TEST_P(MixedFuzzSweep, F16CleanRunsMatchWidenedOracle) {
  mixed_clean_runs_match_oracle<fp16_t>(GetParam());
}

TEST_P(MixedFuzzSweep, Bf16InjectedRunsNeverSilentlyWrong) {
  Xoshiro256 rng(GetParam() ^ 0xBF16);
  for (int iter = 0; iter < 4; ++iter) {
    GemmCase cs = random_case(rng);
    cs.alpha = cs.alpha == 0.0 ? 1.0 : cs.alpha;
    cs.m = std::max<index_t>(cs.m, 8);
    cs.n = std::max<index_t>(cs.n, 8);
    cs.k = std::max<index_t>(cs.k, 8);
    const std::uint64_t pseed = rng.next();
    const auto [am, an] = testing::a_dims(cs);
    const auto [bm, bn] = testing::b_dims(cs);
    Matrix<bf16_t> a(am, an), b(bm, bn);
    Matrix<float> c(cs.m, cs.n);
    a.fill_random(pseed);
    b.fill_random(pseed + 1);
    c.fill_random(pseed + 2);

    Matrix<float> wa(am, an), wb(bm, bn);
    for (index_t j = 0; j < an; ++j)
      for (index_t i = 0; i < am; ++i) wa(i, j) = float(a(i, j));
    for (index_t j = 0; j < bn; ++j)
      for (index_t i = 0; i < bm; ++i) wb(i, j) = float(b(i, j));
    Matrix<float> ref = c.clone();
    testing::naive_ref_gemm<float>(cs.ta, cs.tb, cs.m, cs.n, cs.k,
                                   float(cs.alpha), wa.data(), wa.ld(),
                                   wb.data(), wb.ld(), float(cs.beta),
                                   ref.data(), ref.ld());

    Matrix<float> got = c.clone();
    CountInjector inj(int(1 + rng.bounded(6)), rng.next(), 5.0);
    Options opts;
    opts.injector = &inj;
    const FtReport rep = ft_gemm_bf16(
        Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, float(cs.alpha),
        a.data(), a.ld(), b.data(), b.ld(), float(cs.beta), got.data(),
        got.ld(), opts);
    if (rep.clean()) {
      EXPECT_LE(max_rel_diff(got, ref),
                std::max(gemm_tolerance<float>(cs.k), 1e-5))
          << cs << " injected=" << inj.injected_count()
          << seed_note(GetParam());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixedFuzzSweep,
                         ::testing::ValuesIn(sweep_seeds()));

/// int8 sweep: the quantized path's contract is *stronger* than the float
/// sweeps' — the oracle (widened-int64 sum + the epilogue's exact double
/// expression) must match BIT-FOR-BIT on clean runs, and tolerance-zero
/// verification must never fire on them.
class Int8FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Int8FuzzSweep, CleanRunsBitExactVsWidenedOracle) {
  Xoshiro256 rng(GetParam() ^ 0x18);
  for (int iter = 0; iter < 6; ++iter) {
    const GemmCase cs = random_case(rng);
    const QuantParams qp = testing::random_quant_params(rng);
    const std::uint64_t pseed = rng.next();
    const auto [am, an] = testing::a_dims(cs);
    const auto [bm, bn] = testing::b_dims(cs);
    const Matrix<std::int8_t> a = testing::random_i8_matrix(am, an, pseed);
    const Matrix<std::int8_t> b =
        testing::random_i8_matrix(bm, bn, pseed + 1);
    Matrix<float> c(cs.m, cs.n);
    c.fill_random(pseed + 2);
    Matrix<float> ref = c.clone();
    testing::naive_ref_gemm_i8(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n,
                               cs.k, float(cs.alpha), a.data(), a.ld(),
                               b.data(), b.ld(), float(cs.beta), ref.data(),
                               ref.ld(), qp);
    Matrix<float> got = c.clone();
    const FtReport rep = ft_gemm_i8(Layout::kColMajor, cs.ta, cs.tb, cs.m,
                                    cs.n, cs.k, float(cs.alpha), a.data(),
                                    a.ld(), b.data(), b.ld(),
                                    float(cs.beta), got.data(), got.ld(),
                                    qp);
    EXPECT_TRUE(rep.clean()) << cs << seed_note(GetParam());
    EXPECT_EQ(rep.errors_detected, 0)
        << cs << ": tolerance-0 false positive" << seed_note(GetParam());
    expect_matrix_near(got, ref, 0.0, cs.name() + seed_note(GetParam()));
    Matrix<float> ori = c.clone();
    gemm_i8(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k,
            float(cs.alpha), a.data(), a.ld(), b.data(), b.ld(),
            float(cs.beta), ori.data(), ori.ld(), qp);
    expect_matrix_near(ori, ref, 0.0,
                       "ori " + cs.name() + seed_note(GetParam()));
  }
}

TEST_P(Int8FuzzSweep, InjectedRunsCorrectedToBitExactness) {
  // Injection parity with the float sweeps, sharpened: a clean report
  // means C is bit-identical to the fault-free oracle (the integer solver
  // reverses the exact delta, leaving no rounding residue), and a nonzero
  // integer strike is always detected at tolerance 0.
  Xoshiro256 rng(GetParam() ^ 0x18AB);
  for (int iter = 0; iter < 4; ++iter) {
    GemmCase cs = random_case(rng);
    cs.alpha = cs.alpha == 0.0 ? 1.0 : cs.alpha;
    cs.m = std::max<index_t>(cs.m, 8);
    cs.n = std::max<index_t>(cs.n, 8);
    cs.k = std::max<index_t>(cs.k, 8);
    const QuantParams qp = testing::random_quant_params(rng);
    const std::uint64_t pseed = rng.next();
    const auto [am, an] = testing::a_dims(cs);
    const auto [bm, bn] = testing::b_dims(cs);
    const Matrix<std::int8_t> a = testing::random_i8_matrix(am, an, pseed);
    const Matrix<std::int8_t> b =
        testing::random_i8_matrix(bm, bn, pseed + 1);
    Matrix<float> c(cs.m, cs.n);
    c.fill_random(pseed + 2);
    Matrix<float> ref = c.clone();
    testing::naive_ref_gemm_i8(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n,
                               cs.k, float(cs.alpha), a.data(), a.ld(),
                               b.data(), b.ld(), float(cs.beta), ref.data(),
                               ref.ld(), qp);
    Matrix<float> got = c.clone();
    CountInjector inj(int(1 + rng.bounded(6)), rng.next(), 700.0);
    Options opts;
    opts.injector = &inj;
    const FtReport rep = ft_gemm_i8(Layout::kColMajor, cs.ta, cs.tb, cs.m,
                                    cs.n, cs.k, float(cs.alpha), a.data(),
                                    a.ld(), b.data(), b.ld(),
                                    float(cs.beta), got.data(), got.ld(),
                                    qp, opts);
    EXPECT_GE(rep.errors_detected, 1) << cs << seed_note(GetParam());
    if (rep.clean()) {
      expect_matrix_near(got, ref, 0.0, cs.name() + seed_note(GetParam()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Int8FuzzSweep,
                         ::testing::ValuesIn(sweep_seeds()));

TEST(CorrectionLog, MatchesInjectorGroundTruth) {
  const GemmCase cs{96, 80, 320};
  Problem<double> p(cs);
  Matrix<double> c = p.c.clone();
  DeterministicInjector inj({
      {InjectionKind::kAddDelta, 0, 10, 20, 2.5, 0},
      {InjectionKind::kAddDelta, 1, 70, 5, -4.25, 0},
  });
  std::vector<CorrectionRecord> log;
  Options opts;
  opts.injector = &inj;
  opts.correction_log = &log;
  const FtReport rep = ft_dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n,
                                cs.k, cs.alpha, p.a.data(), p.a.ld(),
                                p.b.data(), p.b.ld(), cs.beta, c.data(),
                                c.ld(), opts);
  ASSERT_TRUE(rep.clean());
  ASSERT_EQ(log.size(), 2u);
  std::sort(log.begin(), log.end(),
            [](const CorrectionRecord& a, const CorrectionRecord& b) {
              return a.panel < b.panel;
            });
  EXPECT_EQ(log[0].panel, 0);
  EXPECT_EQ(log[0].i, 10);
  EXPECT_EQ(log[0].j, 20);
  EXPECT_NEAR(log[0].delta, 2.5, 1e-9);
  EXPECT_EQ(log[0].round, 0);
  EXPECT_EQ(log[1].panel, 1);
  EXPECT_EQ(log[1].i, 70);
  EXPECT_EQ(log[1].j, 5);
  EXPECT_NEAR(log[1].delta, -4.25, 1e-9);
}

TEST(CorrectionLog, RecordsRecheckRounds) {
  // A corruption whose magnitude dwarfs the whole row sum (an exponent-
  // scale upset) cannot be fixed by one checksum delta: subtracting the
  // estimate annihilates the corrupted value but loses the original, which
  // only the exact-recheck round recovers.  The log must show both steps.
  const GemmCase cs{64, 64, 64};
  Problem<double> p(cs);
  Matrix<double> c = p.c.clone();
  DeterministicInjector inj(
      {{InjectionKind::kAddDelta, 0, 17, 23, 1e300, 0}});
  std::vector<CorrectionRecord> log;
  Options opts;
  opts.injector = &inj;
  opts.correction_log = &log;
  const FtReport rep = ft_dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n,
                                cs.k, cs.alpha, p.a.data(), p.a.ld(),
                                p.b.data(), p.b.ld(), cs.beta, c.data(),
                                c.ld(), opts);
  EXPECT_TRUE(rep.clean());
  ASSERT_GE(log.size(), 2u) << "huge flip requires a refinement round";
  EXPECT_EQ(log[0].round, 0);
  EXPECT_GT(log.back().round, 0);
  for (const CorrectionRecord& r : log) {
    EXPECT_EQ(r.i, 17);
    EXPECT_EQ(r.j, 23);
  }
}

}  // namespace
}  // namespace ftgemm
