// Unit tests: checksum encoders and the tolerance model.
#include <gtest/gtest.h>

#include <vector>

#include "abft/checksum.hpp"
#include "abft/tolerance.hpp"
#include "util/matrix.hpp"

namespace ftgemm {
namespace {

class ScaleEncodeTest : public ::testing::TestWithParam<double> {};

TEST_P(ScaleEncodeTest, MatchesStandaloneEncoders) {
  const double beta = GetParam();
  const index_t m = 37, n = 29;
  Matrix<double> c(m, n);
  c.fill_random(31, -3.0, 3.0);
  Matrix<double> expected = c.clone();
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i)
      expected(i, j) = beta == 0.0 ? 0.0 : beta * expected(i, j);

  std::vector<double> cc(static_cast<std::size_t>(m), 0.0), cr(static_cast<std::size_t>(n), 0.0);
  const double amax = scale_encode_c(c.data(), c.ld(), 0, m, n, beta,
                                     cc.data(), cr.data());

  EXPECT_DOUBLE_EQ(max_abs_diff(c, expected), 0.0);
  // amax reports the pre-scale magnitudes (or 0 for the beta==0 fast path,
  // where nothing is read).
  if (beta != 0.0) {
    EXPECT_NEAR(amax, 3.0, 0.05);
  }

  std::vector<double> cc_ref(static_cast<std::size_t>(m));
  std::vector<double> cr_ref(static_cast<std::size_t>(n));
  encode_cc_standalone(c.data(), c.ld(), m, n, cc_ref.data());
  encode_cr_standalone(c.data(), c.ld(), m, n, cr_ref.data());
  for (index_t i = 0; i < m; ++i)
    EXPECT_NEAR(cc[std::size_t(i)], cc_ref[std::size_t(i)], 1e-12);
  for (index_t j = 0; j < n; ++j)
    EXPECT_NEAR(cr[std::size_t(j)], cr_ref[std::size_t(j)], 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Betas, ScaleEncodeTest,
                         ::testing::Values(0.0, 1.0, -0.75, 2.0),
                         [](const auto& info) {
                           std::string s = "beta_" +
                                           std::to_string(info.index);
                           return s;
                         });

TEST(ScaleEncode, RowSliceOnlyTouchesItsRows) {
  const index_t m = 40, n = 8;
  Matrix<double> c(m, n);
  c.fill(1.0);
  std::vector<double> cc(static_cast<std::size_t>(m), 0.0), cr(static_cast<std::size_t>(n), 0.0);
  scale_encode_c(c.data(), c.ld(), 10, 5, n, 2.0, cc.data(), cr.data());
  for (index_t i = 0; i < m; ++i) {
    const bool inside = i >= 10 && i < 15;
    EXPECT_DOUBLE_EQ(c(i, 0), inside ? 2.0 : 1.0);
    EXPECT_DOUBLE_EQ(cc[std::size_t(i)], inside ? 2.0 * n : 0.0);
  }
  for (index_t j = 0; j < n; ++j) EXPECT_DOUBLE_EQ(cr[std::size_t(j)], 10.0);
}

TEST(ScaleEncode, BetaZeroOverwritesGarbageIncludingNaN) {
  const index_t m = 16, n = 4;
  Matrix<double> c(m, n);
  c.fill(std::numeric_limits<double>::quiet_NaN());
  std::vector<double> cc(static_cast<std::size_t>(m), 0.0), cr(static_cast<std::size_t>(n), 0.0);
  scale_encode_c(c.data(), c.ld(), 0, m, n, 0.0, cc.data(), cr.data());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) EXPECT_EQ(c(i, j), 0.0);
  for (index_t i = 0; i < m; ++i) EXPECT_EQ(cc[std::size_t(i)], 0.0);
}

TEST(ScaleC, PlainVariantMatchesBlasSemantics) {
  const index_t m = 24, n = 6;
  Matrix<double> c(m, n);
  c.fill_random(37);
  Matrix<double> orig = c.clone();
  scale_c(c.data(), c.ld(), 0, m, n, 1.0);
  EXPECT_DOUBLE_EQ(max_abs_diff(c, orig), 0.0) << "beta=1 must not write";
  scale_c(c.data(), c.ld(), 0, m, n, -2.0);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i)
      EXPECT_DOUBLE_EQ(c(i, j), -2.0 * orig(i, j));
}

class EncodeArTest : public ::testing::TestWithParam<bool> {};

TEST_P(EncodeArTest, PartialSumsAndAmax) {
  const bool trans = GetParam();
  const index_t m = 33, k = 21;
  // Storage dims depend on trans: effective A is m x k.
  Matrix<double> a(trans ? k : m, trans ? m : k);
  a.fill_random(41, -4.0, 4.0);
  const OperandView<double> view{a.data(), a.ld(), trans};

  std::vector<double> ar(static_cast<std::size_t>(k), 0.5);  // pre-seeded accumulators
  const double alpha = 1.5;
  const double amax = encode_ar_partial(view, 3, m - 3, k, alpha, ar.data());

  double amax_want = 0.0;
  for (index_t p = 0; p < k; ++p) {
    double want = 0.5;
    double colsum = 0.0;
    for (index_t i = 3; i < m; ++i) {
      colsum += view.at(i, p);
      amax_want = std::max(amax_want, std::abs(view.at(i, p)));
    }
    want += alpha * colsum;
    EXPECT_NEAR(ar[std::size_t(p)], want, 1e-12 * std::max(1.0, std::abs(want)))
        << "p=" << p;
  }
  EXPECT_DOUBLE_EQ(amax, amax_want);
}

INSTANTIATE_TEST_SUITE_P(Both, EncodeArTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? std::string("trans")
                                             : std::string("notrans");
                         });

TEST(AmaxB, BothOrientations) {
  const index_t k = 19, n = 23;
  Matrix<double> b(k, n);
  b.fill_random(43, -1.0, 1.0);
  b(7, 11) = -9.5;
  const OperandView<double> nt{b.data(), b.ld(), false};
  EXPECT_DOUBLE_EQ(amax_b_slice(nt, k, 0, n), 9.5);
  // Transposed view: storage is (n x k) effective, so build accordingly.
  Matrix<double> bt(n, k);
  bt.fill_random(44, -1.0, 1.0);
  bt(11, 7) = 8.25;  // effective B(7, 11)
  const OperandView<double> tv{bt.data(), bt.ld(), true};
  EXPECT_DOUBLE_EQ(amax_b_slice(tv, k, 0, n), 8.25);
  // Column sub-range excludes the spike.
  EXPECT_LT(amax_b_slice(nt, k, 0, 11), 9.5);
}

TEST(ChecksumGemv, PropagatesThroughMultiplication) {
  // Identity check of the ABFT algebra: (A·Bc) equals row sums of A·B.
  const index_t m = 14, k = 9, n = 11;
  Matrix<double> a(m, k), b(k, n);
  a.fill_random(51);
  b.fill_random(52);
  const OperandView<double> av{a.data(), a.ld(), false};
  const OperandView<double> bv{b.data(), b.ld(), false};

  std::vector<double> bc(static_cast<std::size_t>(k));
  encode_bc_standalone(bv, k, n, bc.data());
  std::vector<double> cc(static_cast<std::size_t>(m), 0.0);
  checksum_gemv(av, m, k, 2.0, bc.data(), cc.data());

  for (index_t i = 0; i < m; ++i) {
    double want = 0.0;
    for (index_t j = 0; j < n; ++j)
      for (index_t p = 0; p < k; ++p) want += 2.0 * a(i, p) * b(p, j);
    EXPECT_NEAR(cc[std::size_t(i)], want, 1e-11 * std::max(1.0, std::abs(want)));
  }
}

TEST(ChecksumGevm, PropagatesThroughMultiplication) {
  const index_t m = 6, k = 8, n = 10;
  Matrix<double> a(m, k), b(k, n);
  a.fill_random(53);
  b.fill_random(54);
  const OperandView<double> av{a.data(), a.ld(), false};
  const OperandView<double> bv{b.data(), b.ld(), false};

  std::vector<double> ar(static_cast<std::size_t>(k), 0.0);
  encode_ar_partial(av, 0, m, k, 1.0, ar.data());
  std::vector<double> cr(static_cast<std::size_t>(n), 0.0);
  checksum_gevm(bv, k, n, 1.0, ar.data(), cr.data());

  for (index_t j = 0; j < n; ++j) {
    double want = 0.0;
    for (index_t i = 0; i < m; ++i)
      for (index_t p = 0; p < k; ++p) want += a(i, p) * b(p, j);
    EXPECT_NEAR(cr[std::size_t(j)], want, 1e-11 * std::max(1.0, std::abs(want)));
  }
}

// ---------------------------------------------------------------------------
// Tolerance model.
// ---------------------------------------------------------------------------

TEST(Tolerance, ScalesWithProblemAndMagnitudes) {
  const auto t1 = ToleranceModel<double>::compute(100, 100, 100, 1, 1, 1, 1,
                                                  1, 512);
  const auto t2 = ToleranceModel<double>::compute(100, 100, 400, 1, 1, 1, 1,
                                                  1, 512);
  EXPECT_GT(t2.cc_tau, t1.cc_tau) << "deeper K -> larger accumulation noise";
  const auto t3 = ToleranceModel<double>::compute(100, 100, 100, 10, 1, 1, 1,
                                                  1, 512);
  EXPECT_GT(t3.cc_tau, t1.cc_tau) << "bigger data -> larger threshold";
  const auto t4 = ToleranceModel<double>::compute(100, 400, 100, 1, 1, 1, 1,
                                                  1, 512);
  EXPECT_GT(t4.cc_tau, t1.cc_tau) << "wider N -> larger row-sum noise";
}

TEST(Tolerance, FloatIsCoarserThanDouble) {
  const auto td = ToleranceModel<double>::compute(64, 64, 64, 1, 1, 1, 1, 1,
                                                  512);
  const auto tf = ToleranceModel<float>::compute(64, 64, 64, 1, 1, 1, 1, 1,
                                                 512);
  EXPECT_GT(tf.cc_tau, td.cc_tau);
}

TEST(Tolerance, ZeroOperandsStillPositive) {
  const auto t = ToleranceModel<double>::compute(8, 8, 8, 0, 0, 0, 1, 0, 512);
  EXPECT_GT(t.cc_tau, 0.0) << "threshold must never be exactly zero";
  EXPECT_GT(t.cr_tau, 0.0);
}

TEST(Tolerance, TypicalNoiseBelowTypicalInjection) {
  // The separating property the whole scheme rests on: for unit-scale data
  // at bench sizes, tau sits far below an injected delta of O(1) and far
  // above accumulated rounding of ~eps*sqrt(K)*K.
  const index_t k = 4096;
  const auto t = ToleranceModel<double>::compute(k, k, k, 1, 1, 1, 1, 1, 512);
  EXPECT_LT(t.cc_tau, 1e-3);
  const double noise = 2.2e-16 * std::sqrt(double(k)) * 64.0;
  EXPECT_GT(t.cc_tau, noise);
}

}  // namespace
}  // namespace ftgemm
