// Tests for the injection-campaign driver (the §3.2 methodology harness).
#include <gtest/gtest.h>

#include "inject/campaign.hpp"

namespace ftgemm {
namespace {

TEST(Campaign, TwentyErrorRegimeIsReliable) {
  CampaignConfig config;
  config.size = 192;
  config.runs = 5;
  config.errors_per_run = 20;
  config.seed = 77;
  const CampaignResult r = run_injection_campaign(config);
  EXPECT_EQ(r.injected, 100u);
  EXPECT_TRUE(r.reliable()) << "no silently wrong results, ever";
  EXPECT_GT(r.corrected, 0);
  EXPECT_GT(r.mean_gflops, 0.0);
}

TEST(Campaign, DeterministicUnderSeed) {
  CampaignConfig config;
  config.size = 96;
  config.runs = 3;
  config.errors_per_run = 5;
  config.seed = 99;
  const CampaignResult a = run_injection_campaign(config);
  const CampaignResult b = run_injection_campaign(config);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.corrected, b.corrected);
  EXPECT_EQ(a.uncorrectable_runs, b.uncorrectable_runs);
}

TEST(Campaign, ReliableModeRetriesDirtyRuns) {
  // High error density in a small matrix provokes occasional uncorrectable
  // panels; reliable mode must keep wrong_result_runs at zero AND scrub
  // uncorrectable runs via retry.
  CampaignConfig config;
  config.size = 96;
  config.runs = 8;
  config.errors_per_run = 30;
  config.magnitude = 4.0;
  config.seed = 1;
  config.use_reliable = true;
  const CampaignResult r = run_injection_campaign(config);
  EXPECT_TRUE(r.reliable());
  // Every retry re-runs under a fresh 30-error schedule, so the injected
  // total is 240 plus 30 per retry.
  EXPECT_EQ(r.injected, 240u + 30u * std::size_t(r.retries));
}

TEST(Campaign, ZeroErrorsMeansCleanBaseline) {
  CampaignConfig config;
  config.size = 64;
  config.runs = 2;
  config.errors_per_run = 0;
  const CampaignResult r = run_injection_campaign(config);
  EXPECT_EQ(r.injected, 0u);
  EXPECT_EQ(r.detected, 0);
  EXPECT_EQ(r.uncorrectable_runs, 0);
  EXPECT_LT(r.max_rel_error, 1e-12);
}

TEST(Campaign, ParallelThreadsSupported) {
  CampaignConfig config;
  config.size = 128;
  config.runs = 3;
  config.errors_per_run = 10;
  config.threads = 4;
  config.seed = 5;
  const CampaignResult r = run_injection_campaign(config);
  EXPECT_TRUE(r.reliable());
  EXPECT_EQ(r.injected, 30u);
}

}  // namespace
}  // namespace ftgemm
