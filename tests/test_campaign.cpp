// Tests for the injection-campaign drivers (the §3.2 methodology harness):
// single-call, batched, and the async-service campaign.  Deterministic by
// default: every campaign seed derives from FTGEMM_TEST_SEED (unset = the
// historical fixed defaults), and failures print the seed to replay with.
// The binary stays under the `slow` ctest label.
#include <gtest/gtest.h>

#include "core/gemm.hpp"
#include "inject/campaign.hpp"
#include "inject/injectors.hpp"
#include "test_common.hpp"

namespace ftgemm {
namespace {

using testing::seed_note;
using testing::test_seed;

TEST(Campaign, TwentyErrorRegimeIsReliable) {
  CampaignConfig config;
  config.size = 192;
  config.runs = 5;
  config.errors_per_run = 20;
  config.seed = test_seed(77);
  const CampaignResult r = run_injection_campaign(config);
  EXPECT_EQ(r.injected, 100u) << seed_note(config.seed);
  EXPECT_TRUE(r.reliable())
      << "no silently wrong results, ever" << seed_note(config.seed);
  EXPECT_GT(r.corrected, 0) << seed_note(config.seed);
  EXPECT_GT(r.mean_gflops, 0.0);
}

TEST(Campaign, DeterministicUnderSeed) {
  CampaignConfig config;
  config.size = 96;
  config.runs = 3;
  config.errors_per_run = 5;
  config.seed = test_seed(99);
  const CampaignResult a = run_injection_campaign(config);
  const CampaignResult b = run_injection_campaign(config);
  EXPECT_EQ(a.injected, b.injected) << seed_note(config.seed);
  EXPECT_EQ(a.detected, b.detected) << seed_note(config.seed);
  EXPECT_EQ(a.corrected, b.corrected) << seed_note(config.seed);
  EXPECT_EQ(a.uncorrectable_runs, b.uncorrectable_runs)
      << seed_note(config.seed);
}

TEST(Campaign, ReliableModeRetriesDirtyRuns) {
  // High error density in a small matrix provokes occasional uncorrectable
  // panels; reliable mode must keep wrong_result_runs at zero AND scrub
  // uncorrectable runs via retry.
  CampaignConfig config;
  config.size = 96;
  config.runs = 8;
  config.errors_per_run = 30;
  config.magnitude = 4.0;
  config.seed = test_seed(1);
  config.use_reliable = true;
  const CampaignResult r = run_injection_campaign(config);
  EXPECT_TRUE(r.reliable()) << seed_note(config.seed);
  // Every retry re-runs under a fresh 30-error schedule, so the injected
  // total is 240 plus 30 per retry.
  EXPECT_EQ(r.injected, 240u + 30u * std::size_t(r.retries))
      << seed_note(config.seed);
}

TEST(Campaign, ZeroErrorsMeansCleanBaseline) {
  CampaignConfig config;
  config.size = 64;
  config.runs = 2;
  config.errors_per_run = 0;
  config.seed = test_seed(config.seed);
  const CampaignResult r = run_injection_campaign(config);
  EXPECT_EQ(r.injected, 0u) << seed_note(config.seed);
  EXPECT_EQ(r.detected, 0) << seed_note(config.seed);
  EXPECT_EQ(r.uncorrectable_runs, 0) << seed_note(config.seed);
  EXPECT_LT(r.max_rel_error, 1e-12) << seed_note(config.seed);
}

TEST(Campaign, ParallelThreadsSupported) {
  CampaignConfig config;
  config.size = 128;
  config.runs = 3;
  config.errors_per_run = 10;
  config.threads = 4;
  config.seed = test_seed(5);
  const CampaignResult r = run_injection_campaign(config);
  EXPECT_TRUE(r.reliable()) << seed_note(config.seed);
  EXPECT_EQ(r.injected, 30u) << seed_note(config.seed);
}

TEST(ServiceCampaign, TargetsInflightRequestsReliably) {
  // Faults striking requests in flight in the async serving layer: every
  // third request carries its own injector (request-scoped Options), the
  // rest stay eligible for coalesced routing around them.  The reliability
  // claim is unchanged one layer up: every fault corrected or flagged,
  // never silent.
  ServiceCampaignConfig config;
  config.size = 96;
  config.requests = 12;
  config.inject_every = 3;
  config.errors_per_target = 4;
  config.seed = test_seed(config.seed);
  config.max_inflight = 2;
  const ServiceCampaignResult r = run_service_injection_campaign(config);
  EXPECT_EQ(r.targeted_requests, 4) << seed_note(config.seed);
  EXPECT_GT(r.injected, 0u) << seed_note(config.seed);
  EXPECT_GT(r.detected, 0) << seed_note(config.seed);
  EXPECT_TRUE(r.reliable())
      << "a served request returned silently wrong data"
      << seed_note(config.seed);
}

TEST(ServiceCampaign, CleanTrafficStaysCleanAndCoalesces) {
  ServiceCampaignConfig config;
  config.size = 64;
  config.requests = 10;
  config.inject_every = 0;  // no faults anywhere
  config.seed = test_seed(config.seed);
  config.max_inflight = 1;  // queue builds up => merged batches form
  const ServiceCampaignResult r = run_service_injection_campaign(config);
  EXPECT_EQ(r.injected, 0u) << seed_note(config.seed);
  EXPECT_EQ(r.detected, 0) << seed_note(config.seed);
  EXPECT_EQ(r.dirty_requests, 0) << seed_note(config.seed);
  EXPECT_TRUE(r.reliable()) << seed_note(config.seed);
  EXPECT_LT(r.max_rel_error, 1e-9) << seed_note(config.seed);
  EXPECT_GT(r.coalesced_requests, 0)
      << "uninjected same-shape traffic should ride merged batches"
      << seed_note(config.seed);
}

// Memory-domain campaign over the resident-operand cache: a serving loop
// whose cached packed panels are struck by bit flips on every third hit.
// The CHECK_BEFORE re-verification must detect each strike, heal it by
// re-encoding from the source weight, and every round's result must match
// the naive reference — never a silently wrong answer, exactly like the
// compute-domain campaigns above.
TEST(MemoryFaultCampaign, ResidentPanelFlipsAlwaysHealedNeverSilent) {
  clear_process_caches();
  const std::uint64_t seed = test_seed(2026);
  const testing::GemmCase cs{96, 64, 160};
  const testing::Problem<double> p(cs, seed);
  const Matrix<double> ref = testing::reference_result(cs, p);

  Options opts;
  opts.threads = 2;
  opts.resident_a = true;

  Matrix<double> c_cold = p.c.clone();
  {
    Options cold = opts;
    cold.resident_a = false;
    ft_dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
             p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), cs.beta,
             c_cold.data(), c_cold.ld(), cold);
  }

  // Warm the entry (the miss encodes; the injector only sees hits).
  Matrix<double> c = p.c.clone();
  FtReport rep = ft_dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k,
                          cs.alpha, p.a.data(), p.a.ld(), p.b.data(),
                          p.b.ld(), cs.beta, c.data(), c.ld(), opts);
  ASSERT_FALSE(rep.resident_hit) << seed_note(seed);

  constexpr int kRounds = 30;
  constexpr int kFlipsPerStrike = 2;
  PanelBitFlipInjector injector(kFlipsPerStrike, seed, /*bit=*/61,
                                /*every=*/3);
  opts.memory_injector = &injector;
  std::int64_t heals = 0;
  for (int round = 0; round < kRounds; ++round) {
    c = p.c.clone();
    rep = ft_dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k,
                   cs.alpha, p.a.data(), p.a.ld(), p.b.data(), p.b.ld(),
                   cs.beta, c.data(), c.ld(), opts);
    ASSERT_TRUE(rep.resident_hit) << "round " << round << seed_note(seed);
    EXPECT_TRUE(rep.clean()) << "round " << round << seed_note(seed);
    heals += rep.resident_heals;
    // Healed-or-clean, the delivered result is the cold result, bit for
    // bit — and therefore within the standard tolerance of the oracle.
    testing::expect_matrix_near(c, c_cold, 0.0,
                                "campaign round " + std::to_string(round));
  }
  testing::expect_matrix_near(c, ref, testing::gemm_tolerance<double>(cs.k),
                              "final round vs naive_ref_gemm");

  // Strikes land on hits 0, 3, ..., 27: ten corrupted rounds, each healed.
  EXPECT_EQ(heals, kRounds / 3) << seed_note(seed);
  EXPECT_EQ(injector.applied_count(),
            std::size_t(kRounds / 3) * kFlipsPerStrike)
      << seed_note(seed);
}

}  // namespace
}  // namespace ftgemm
