// Tests for the injection-campaign drivers (the §3.2 methodology harness):
// single-call, batched, and the async-service campaign.  Deterministic by
// default: every campaign seed derives from FTGEMM_TEST_SEED (unset = the
// historical fixed defaults), and failures print the seed to replay with.
// The binary stays under the `slow` ctest label.
#include <gtest/gtest.h>

#include "inject/campaign.hpp"
#include "test_common.hpp"

namespace ftgemm {
namespace {

using testing::seed_note;
using testing::test_seed;

TEST(Campaign, TwentyErrorRegimeIsReliable) {
  CampaignConfig config;
  config.size = 192;
  config.runs = 5;
  config.errors_per_run = 20;
  config.seed = test_seed(77);
  const CampaignResult r = run_injection_campaign(config);
  EXPECT_EQ(r.injected, 100u) << seed_note(config.seed);
  EXPECT_TRUE(r.reliable())
      << "no silently wrong results, ever" << seed_note(config.seed);
  EXPECT_GT(r.corrected, 0) << seed_note(config.seed);
  EXPECT_GT(r.mean_gflops, 0.0);
}

TEST(Campaign, DeterministicUnderSeed) {
  CampaignConfig config;
  config.size = 96;
  config.runs = 3;
  config.errors_per_run = 5;
  config.seed = test_seed(99);
  const CampaignResult a = run_injection_campaign(config);
  const CampaignResult b = run_injection_campaign(config);
  EXPECT_EQ(a.injected, b.injected) << seed_note(config.seed);
  EXPECT_EQ(a.detected, b.detected) << seed_note(config.seed);
  EXPECT_EQ(a.corrected, b.corrected) << seed_note(config.seed);
  EXPECT_EQ(a.uncorrectable_runs, b.uncorrectable_runs)
      << seed_note(config.seed);
}

TEST(Campaign, ReliableModeRetriesDirtyRuns) {
  // High error density in a small matrix provokes occasional uncorrectable
  // panels; reliable mode must keep wrong_result_runs at zero AND scrub
  // uncorrectable runs via retry.
  CampaignConfig config;
  config.size = 96;
  config.runs = 8;
  config.errors_per_run = 30;
  config.magnitude = 4.0;
  config.seed = test_seed(1);
  config.use_reliable = true;
  const CampaignResult r = run_injection_campaign(config);
  EXPECT_TRUE(r.reliable()) << seed_note(config.seed);
  // Every retry re-runs under a fresh 30-error schedule, so the injected
  // total is 240 plus 30 per retry.
  EXPECT_EQ(r.injected, 240u + 30u * std::size_t(r.retries))
      << seed_note(config.seed);
}

TEST(Campaign, ZeroErrorsMeansCleanBaseline) {
  CampaignConfig config;
  config.size = 64;
  config.runs = 2;
  config.errors_per_run = 0;
  config.seed = test_seed(config.seed);
  const CampaignResult r = run_injection_campaign(config);
  EXPECT_EQ(r.injected, 0u) << seed_note(config.seed);
  EXPECT_EQ(r.detected, 0) << seed_note(config.seed);
  EXPECT_EQ(r.uncorrectable_runs, 0) << seed_note(config.seed);
  EXPECT_LT(r.max_rel_error, 1e-12) << seed_note(config.seed);
}

TEST(Campaign, ParallelThreadsSupported) {
  CampaignConfig config;
  config.size = 128;
  config.runs = 3;
  config.errors_per_run = 10;
  config.threads = 4;
  config.seed = test_seed(5);
  const CampaignResult r = run_injection_campaign(config);
  EXPECT_TRUE(r.reliable()) << seed_note(config.seed);
  EXPECT_EQ(r.injected, 30u) << seed_note(config.seed);
}

TEST(ServiceCampaign, TargetsInflightRequestsReliably) {
  // Faults striking requests in flight in the async serving layer: every
  // third request carries its own injector (request-scoped Options), the
  // rest stay eligible for coalesced routing around them.  The reliability
  // claim is unchanged one layer up: every fault corrected or flagged,
  // never silent.
  ServiceCampaignConfig config;
  config.size = 96;
  config.requests = 12;
  config.inject_every = 3;
  config.errors_per_target = 4;
  config.seed = test_seed(config.seed);
  config.max_inflight = 2;
  const ServiceCampaignResult r = run_service_injection_campaign(config);
  EXPECT_EQ(r.targeted_requests, 4) << seed_note(config.seed);
  EXPECT_GT(r.injected, 0u) << seed_note(config.seed);
  EXPECT_GT(r.detected, 0) << seed_note(config.seed);
  EXPECT_TRUE(r.reliable())
      << "a served request returned silently wrong data"
      << seed_note(config.seed);
}

TEST(ServiceCampaign, CleanTrafficStaysCleanAndCoalesces) {
  ServiceCampaignConfig config;
  config.size = 64;
  config.requests = 10;
  config.inject_every = 0;  // no faults anywhere
  config.seed = test_seed(config.seed);
  config.max_inflight = 1;  // queue builds up => merged batches form
  const ServiceCampaignResult r = run_service_injection_campaign(config);
  EXPECT_EQ(r.injected, 0u) << seed_note(config.seed);
  EXPECT_EQ(r.detected, 0) << seed_note(config.seed);
  EXPECT_EQ(r.dirty_requests, 0) << seed_note(config.seed);
  EXPECT_TRUE(r.reliable()) << seed_note(config.seed);
  EXPECT_LT(r.max_rel_error, 1e-9) << seed_note(config.seed);
  EXPECT_GT(r.coalesced_requests, 0)
      << "uninjected same-shape traffic should ride merged batches"
      << seed_note(config.seed);
}

}  // namespace
}  // namespace ftgemm
