// Tests for the injection-campaign drivers (the §3.2 methodology harness):
// single-call, batched, and the async-service campaign.  Deterministic by
// default: every campaign seed derives from FTGEMM_TEST_SEED (unset = the
// historical fixed defaults), and failures print the seed to replay with.
// The binary stays under the `slow` ctest label.
#include <gtest/gtest.h>

#include "core/gemm.hpp"
#include "inject/campaign.hpp"
#include "inject/injectors.hpp"
#include "inject/memory_campaign.hpp"
#include "test_common.hpp"

namespace ftgemm {
namespace {

using testing::seed_note;
using testing::test_seed;

TEST(Campaign, TwentyErrorRegimeIsReliable) {
  CampaignConfig config;
  config.size = 192;
  config.runs = 5;
  config.errors_per_run = 20;
  config.seed = test_seed(77);
  const CampaignResult r = run_injection_campaign(config);
  EXPECT_EQ(r.injected, 100u) << seed_note(config.seed);
  EXPECT_TRUE(r.reliable())
      << "no silently wrong results, ever" << seed_note(config.seed);
  EXPECT_GT(r.corrected, 0) << seed_note(config.seed);
  EXPECT_GT(r.mean_gflops, 0.0);
}

TEST(Campaign, DeterministicUnderSeed) {
  CampaignConfig config;
  config.size = 96;
  config.runs = 3;
  config.errors_per_run = 5;
  config.seed = test_seed(99);
  const CampaignResult a = run_injection_campaign(config);
  const CampaignResult b = run_injection_campaign(config);
  EXPECT_EQ(a.injected, b.injected) << seed_note(config.seed);
  EXPECT_EQ(a.detected, b.detected) << seed_note(config.seed);
  EXPECT_EQ(a.corrected, b.corrected) << seed_note(config.seed);
  EXPECT_EQ(a.uncorrectable_runs, b.uncorrectable_runs)
      << seed_note(config.seed);
}

TEST(Campaign, ReliableModeRetriesDirtyRuns) {
  // High error density in a small matrix provokes occasional uncorrectable
  // panels; reliable mode must keep wrong_result_runs at zero AND scrub
  // uncorrectable runs via retry.
  CampaignConfig config;
  config.size = 96;
  config.runs = 8;
  config.errors_per_run = 30;
  config.magnitude = 4.0;
  config.seed = test_seed(1);
  config.use_reliable = true;
  const CampaignResult r = run_injection_campaign(config);
  EXPECT_TRUE(r.reliable()) << seed_note(config.seed);
  // Every retry re-runs under a fresh 30-error schedule, so the injected
  // total is 240 plus 30 per retry.
  EXPECT_EQ(r.injected, 240u + 30u * std::size_t(r.retries))
      << seed_note(config.seed);
}

TEST(Campaign, ZeroErrorsMeansCleanBaseline) {
  CampaignConfig config;
  config.size = 64;
  config.runs = 2;
  config.errors_per_run = 0;
  config.seed = test_seed(config.seed);
  const CampaignResult r = run_injection_campaign(config);
  EXPECT_EQ(r.injected, 0u) << seed_note(config.seed);
  EXPECT_EQ(r.detected, 0) << seed_note(config.seed);
  EXPECT_EQ(r.uncorrectable_runs, 0) << seed_note(config.seed);
  EXPECT_LT(r.max_rel_error, 1e-12) << seed_note(config.seed);
}

TEST(Campaign, ParallelThreadsSupported) {
  CampaignConfig config;
  config.size = 128;
  config.runs = 3;
  config.errors_per_run = 10;
  config.threads = 4;
  config.seed = test_seed(5);
  const CampaignResult r = run_injection_campaign(config);
  EXPECT_TRUE(r.reliable()) << seed_note(config.seed);
  EXPECT_EQ(r.injected, 30u) << seed_note(config.seed);
}

TEST(ServiceCampaign, TargetsInflightRequestsReliably) {
  // Faults striking requests in flight in the async serving layer: every
  // third request carries its own injector (request-scoped Options), the
  // rest stay eligible for coalesced routing around them.  The reliability
  // claim is unchanged one layer up: every fault corrected or flagged,
  // never silent.
  ServiceCampaignConfig config;
  config.size = 96;
  config.requests = 12;
  config.inject_every = 3;
  config.errors_per_target = 4;
  config.seed = test_seed(config.seed);
  config.max_inflight = 2;
  const ServiceCampaignResult r = run_service_injection_campaign(config);
  EXPECT_EQ(r.targeted_requests, 4) << seed_note(config.seed);
  EXPECT_GT(r.injected, 0u) << seed_note(config.seed);
  EXPECT_GT(r.detected, 0) << seed_note(config.seed);
  EXPECT_TRUE(r.reliable())
      << "a served request returned silently wrong data"
      << seed_note(config.seed);
}

TEST(ServiceCampaign, CleanTrafficStaysCleanAndCoalesces) {
  ServiceCampaignConfig config;
  config.size = 64;
  config.requests = 10;
  config.inject_every = 0;  // no faults anywhere
  config.seed = test_seed(config.seed);
  config.max_inflight = 1;  // queue builds up => merged batches form
  const ServiceCampaignResult r = run_service_injection_campaign(config);
  EXPECT_EQ(r.injected, 0u) << seed_note(config.seed);
  EXPECT_EQ(r.detected, 0) << seed_note(config.seed);
  EXPECT_EQ(r.dirty_requests, 0) << seed_note(config.seed);
  EXPECT_TRUE(r.reliable()) << seed_note(config.seed);
  EXPECT_LT(r.max_rel_error, 1e-9) << seed_note(config.seed);
  EXPECT_GT(r.coalesced_requests, 0)
      << "uninjected same-shape traffic should ride merged batches"
      << seed_note(config.seed);
}

// Memory-domain campaign over the resident-operand cache: a serving loop
// whose cached packed panels are struck by bit flips on every third hit.
// The CHECK_BEFORE re-verification must detect each strike, heal it by
// re-encoding from the source weight, and every round's result must match
// the naive reference — never a silently wrong answer, exactly like the
// compute-domain campaigns above.
TEST(MemoryFaultCampaign, ResidentPanelFlipsAlwaysHealedNeverSilent) {
  clear_process_caches();
  const std::uint64_t seed = test_seed(2026);
  const testing::GemmCase cs{96, 64, 160};
  const testing::Problem<double> p(cs, seed);
  const Matrix<double> ref = testing::reference_result(cs, p);

  Options opts;
  opts.threads = 2;
  opts.resident_a = true;

  Matrix<double> c_cold = p.c.clone();
  {
    Options cold = opts;
    cold.resident_a = false;
    ft_dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
             p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), cs.beta,
             c_cold.data(), c_cold.ld(), cold);
  }

  // Warm the entry (the miss encodes; the injector only sees hits).
  Matrix<double> c = p.c.clone();
  FtReport rep = ft_dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k,
                          cs.alpha, p.a.data(), p.a.ld(), p.b.data(),
                          p.b.ld(), cs.beta, c.data(), c.ld(), opts);
  ASSERT_FALSE(rep.resident_hit) << seed_note(seed);

  constexpr int kRounds = 30;
  constexpr int kFlipsPerStrike = 2;
  PanelBitFlipInjector injector(kFlipsPerStrike, seed, /*bit=*/61,
                                /*every=*/3);
  opts.memory_injector = &injector;
  std::int64_t heals = 0;
  for (int round = 0; round < kRounds; ++round) {
    c = p.c.clone();
    rep = ft_dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k,
                   cs.alpha, p.a.data(), p.a.ld(), p.b.data(), p.b.ld(),
                   cs.beta, c.data(), c.ld(), opts);
    ASSERT_TRUE(rep.resident_hit) << "round " << round << seed_note(seed);
    EXPECT_TRUE(rep.clean()) << "round " << round << seed_note(seed);
    heals += rep.resident_heals;
    // Healed-or-clean, the delivered result is the cold result, bit for
    // bit — and therefore within the standard tolerance of the oracle.
    testing::expect_matrix_near(c, c_cold, 0.0,
                                "campaign round " + std::to_string(round));
  }
  testing::expect_matrix_near(c, ref, testing::gemm_tolerance<double>(cs.k),
                              "final round vs naive_ref_gemm");

  // Strikes land on hits 0, 3, ..., 27: ten corrupted rounds, each healed.
  EXPECT_EQ(heals, kRounds / 3) << seed_note(seed);
  EXPECT_EQ(injector.applied_count(),
            std::size_t(kRounds / 3) * kFlipsPerStrike)
      << seed_note(seed);
}

std::string cell_note(const MemoryCampaignResult& r) {
  return std::string("  [cell surface=") +
         memory_surface_name(r.config.surface) +
         " faults=" + std::to_string(r.config.faults) +
         " burst=" + std::to_string(r.config.burst) +
         " ecc=" + (r.config.ecc ? "on" : "off") + "]";
}

// The acceptance sweep (DESIGN.md §12): every surface x fault count x
// burstiness cell of the default grid, at a reduced trial count.  The hard
// claims: every trial is detected or provably masked (result bit-identical
// to the clean reference) — never silent at any fault density; the
// bit-exact defenses (SEC-DED parity, plan self-checksum, exact int8 panel
// checksums) mask nothing, so their single-bit cells detect 100%; and the
// ECC cell corrects singles in place with ZERO re-encode heals, its
// corrected-bit count matching the injector ground truth exactly.  Only the
// fp resident surface without ECC may mask: an ulp-level mantissa flip can
// be rounded away by both the fp integrity sums and the product.
TEST(MemoryFaultCampaign, SweepDetectsAllSingleBitStrikesAndIsNeverSilent) {
  const std::uint64_t seed = test_seed(0x5eed);
  constexpr int kTrials = 5;
  const std::vector<MemoryCampaignResult> results =
      run_memory_campaign_sweep(default_memory_campaign_grid(kTrials, seed));
  // 4 surfaces x faults {1,4} x burst {1,3}, plus the 4 resident cells
  // duplicated with ECC on.
  ASSERT_EQ(results.size(), 20u);

  for (const MemoryCampaignResult& r : results) {
    EXPECT_EQ(r.trials, kTrials) << cell_note(r) << seed_note(seed);
    EXPECT_GT(r.injected_bits, 0) << cell_note(r) << seed_note(seed);
    // The invariant that defines the fault model: never silent, anywhere,
    // and every undetected trial is provably harmless.
    EXPECT_EQ(r.silent_trials, 0) << cell_note(r) << seed_note(seed);
    EXPECT_EQ(r.detected_trials + r.masked_trials, std::int64_t(r.trials))
        << cell_note(r) << seed_note(seed);
    const bool bit_exact_surface =
        r.config.ecc || r.config.surface != MemorySurface::kResidentPanel;
    if (bit_exact_surface) {
      EXPECT_EQ(r.masked_trials, 0) << cell_note(r) << seed_note(seed);
    }
    if (r.config.faults == 1 && r.config.burst == 1) {
      EXPECT_EQ(r.injected_bits, std::int64_t(kTrials))
          << cell_note(r) << seed_note(seed);
      if (bit_exact_surface) {
        // 100% detection of single-bit faults on every bit-exact surface.
        EXPECT_EQ(r.detected_trials, r.trials)
            << cell_note(r) << seed_note(seed);
        EXPECT_EQ(r.detection_rate(), 1.0) << cell_note(r) << seed_note(seed);
      }
      if (r.config.ecc) {
        // SEC-DED corrects every single strike in place: corrected bits
        // match the injector ground truth exactly, and the re-encode heal
        // path is never taken.
        EXPECT_EQ(r.ecc_corrected, r.injected_bits)
            << cell_note(r) << seed_note(seed);
        EXPECT_EQ(r.heals, 0) << cell_note(r) << seed_note(seed);
      } else if (r.config.surface == MemorySurface::kResidentPanel) {
        // Every detected trial healed by re-encode, exactly once.
        EXPECT_EQ(r.heals, r.detected_trials) << cell_note(r)
                                              << seed_note(seed);
      } else if (r.config.surface == MemorySurface::kPlan) {
        EXPECT_EQ(r.plan_heals, std::int64_t(kTrials))
            << cell_note(r) << seed_note(seed);
      }
    }
  }
}

// Same config => bit-identical counters, run to run and across thread-team
// backends: the cross-backend bit-identity contract extends to strike
// placement (B~ strikes run under tm.single, A~ strikes are pinned to
// member 0), so a campaign is a reproducible experiment everywhere.
TEST(MemoryFaultCampaign, DeterministicAcrossRunsAndBackends) {
  MemoryCampaignConfig cfg;
  cfg.surface = MemorySurface::kPanelB;
  cfg.faults = 2;
  cfg.burst = 3;
  cfg.trials = 4;
  cfg.seed = test_seed(0xca3);
  cfg.threads = 2;
  cfg.runtime = RuntimeBackend::kOpenMP;

  const MemoryCampaignResult a = run_memory_campaign(cfg);
  const MemoryCampaignResult b = run_memory_campaign(cfg);
  MemoryCampaignConfig pool_cfg = cfg;
  pool_cfg.runtime = RuntimeBackend::kPool;
  const MemoryCampaignResult c = run_memory_campaign(pool_cfg);

  const auto expect_equal = [&](const MemoryCampaignResult& x,
                                const MemoryCampaignResult& y,
                                const char* what) {
    EXPECT_EQ(x.injected_bits, y.injected_bits) << what << seed_note(cfg.seed);
    EXPECT_EQ(x.detected_trials, y.detected_trials)
        << what << seed_note(cfg.seed);
    EXPECT_EQ(x.abft_detected, y.abft_detected) << what << seed_note(cfg.seed);
    EXPECT_EQ(x.abft_corrected, y.abft_corrected)
        << what << seed_note(cfg.seed);
    EXPECT_EQ(x.flagged_trials, y.flagged_trials)
        << what << seed_note(cfg.seed);
    EXPECT_EQ(x.masked_trials, y.masked_trials) << what << seed_note(cfg.seed);
    EXPECT_EQ(x.silent_trials, y.silent_trials) << what << seed_note(cfg.seed);
  };
  expect_equal(a, b, "rerun, same backend");
  expect_equal(a, c, "openmp vs pool");
  EXPECT_EQ(a.silent_trials, 0) << seed_note(cfg.seed);
  EXPECT_GT(a.detected_trials, 0) << seed_note(cfg.seed);
}

}  // namespace
}  // namespace ftgemm
