// Unit tests: micro-kernels.
//
// Every (ISA, type) kernel is validated against a straightforward reference
// computed from the same packed panels: C_tile += Apanel * Bpanel.  The FT
// variants must additionally produce exact register-level reference
// checksums (column sums lane-strided by cr_lanes, row sums direct).
#include <gtest/gtest.h>

#include <vector>

#include "arch/cpu_features.hpp"
#include "blocking/plan.hpp"
#include "kernels/microkernel.hpp"
#include "util/aligned_buffer.hpp"
#include "util/rng.hpp"

namespace ftgemm {
namespace {

template <typename T>
std::vector<KernelSet<T>> runnable_kernel_sets() {
  std::vector<KernelSet<T>> sets;
  if constexpr (sizeof(T) == 8) {
    sets.push_back(scalar_kernels_f64());
    if (cpu_features().has_avx2_kernel_support())
      sets.push_back(avx2_kernels_f64());
    if (cpu_features().has_avx512_kernel_support())
      sets.push_back(avx512_kernels_f64());
  } else {
    sets.push_back(scalar_kernels_f32());
    if (cpu_features().has_avx2_kernel_support())
      sets.push_back(avx2_kernels_f32());
    if (cpu_features().has_avx512_kernel_support())
      sets.push_back(avx512_kernels_f32());
  }
  return sets;
}

/// Dense reference for one packed tile update.
template <typename T>
void reference_tile(index_t mr, index_t nr, index_t kc, const T* a,
                    const T* b, std::vector<T>& c, index_t ldc) {
  for (index_t p = 0; p < kc; ++p)
    for (index_t j = 0; j < nr; ++j)
      for (index_t i = 0; i < mr; ++i)
        c[std::size_t(i + j * ldc)] += a[p * mr + i] * b[p * nr + j];
}

template <typename T>
class KernelTest : public ::testing::TestWithParam<index_t> {};

using KernelTestF64 = KernelTest<double>;
using KernelTestF32 = KernelTest<float>;

template <typename T>
void run_base_kernel_case(index_t kc) {
  for (const KernelSet<T>& ks : runnable_kernel_sets<T>()) {
    const index_t mr = ks.mr, nr = ks.nr;
    AlignedBuffer<T> a(static_cast<std::size_t>(mr * std::max<index_t>(kc, 1)));
    AlignedBuffer<T> b(static_cast<std::size_t>(nr * std::max<index_t>(kc, 1)));
    Xoshiro256 rng(index_t(kc) * 131 + mr);
    for (std::size_t i = 0; i < a.size(); ++i) a[i] = T(rng.uniform(-1, 1));
    for (std::size_t i = 0; i < b.size(); ++i) b[i] = T(rng.uniform(-1, 1));

    const index_t ldc = mr + 3;  // deliberately unaligned leading dimension
    std::vector<T> c(static_cast<std::size_t>(ldc * nr));
    for (auto& v : c) v = T(rng.uniform(-1, 1));
    std::vector<T> ref = c;

    ks.base(kc, a.data(), b.data(), c.data(), ldc);
    reference_tile<T>(mr, nr, kc, a.data(), b.data(), ref, ldc);

    const double tol = 1e-5 * (sizeof(T) == 8 ? 1e-8 : 1.0) * double(kc + 1);
    for (index_t j = 0; j < nr; ++j)
      for (index_t i = 0; i < mr; ++i)
        EXPECT_NEAR(double(c[std::size_t(i + j * ldc)]),
                    double(ref[std::size_t(i + j * ldc)]), tol)
            << "isa=" << isa_name(ks.isa) << " kc=" << kc << " (" << i << ","
            << j << ")";
  }
}

template <typename T>
void run_ft_kernel_case(index_t kc) {
  for (const KernelSet<T>& ks : runnable_kernel_sets<T>()) {
    const index_t mr = ks.mr, nr = ks.nr, lanes = ks.cr_lanes;
    AlignedBuffer<T> a(static_cast<std::size_t>(mr * std::max<index_t>(kc, 1)));
    AlignedBuffer<T> b(static_cast<std::size_t>(nr * std::max<index_t>(kc, 1)));
    Xoshiro256 rng(index_t(kc) * 733 + nr);
    for (std::size_t i = 0; i < a.size(); ++i) a[i] = T(rng.uniform(-1, 1));
    for (std::size_t i = 0; i < b.size(); ++i) b[i] = T(rng.uniform(-1, 1));

    const index_t ldc = mr;
    std::vector<T> c_ft(static_cast<std::size_t>(ldc * nr));
    for (auto& v : c_ft) v = T(rng.uniform(-1, 1));
    std::vector<T> c_base = c_ft;

    std::vector<T> cr_ref(static_cast<std::size_t>(nr * lanes), T(0));
    std::vector<T> cc_ref(static_cast<std::size_t>(mr), T(0));
    // Seed the checksum accumulators to verify the kernel accumulates
    // rather than overwrites.
    cr_ref[0] = T(2);
    cc_ref[0] = T(3);

    ks.ft(kc, a.data(), b.data(), c_ft.data(), ldc, cr_ref.data(),
          cc_ref.data());
    ks.base(kc, a.data(), b.data(), c_base.data(), ldc);

    // 1) FT kernel computes the same C as the base kernel, bitwise.
    for (std::size_t i = 0; i < c_ft.size(); ++i)
      EXPECT_EQ(c_ft[i], c_base[i]) << "isa=" << isa_name(ks.isa);

    // 2) Reference checksums equal the actual sums of the final tile.
    const double tol = double(std::numeric_limits<T>::epsilon()) *
                       double(kc + mr + nr) * 64.0;
    for (index_t j = 0; j < nr; ++j) {
      double lane_sum = 0.0;
      for (index_t l = 0; l < lanes; ++l)
        lane_sum += double(cr_ref[std::size_t(j * lanes + l)]);
      double want = (j == 0) ? 2.0 : 0.0;
      for (index_t i = 0; i < mr; ++i)
        want += double(c_ft[std::size_t(i + j * ldc)]);
      EXPECT_NEAR(lane_sum, want, tol * std::max(1.0, std::abs(want)))
          << "isa=" << isa_name(ks.isa) << " col " << j;
    }
    for (index_t i = 0; i < mr; ++i) {
      double want = (i == 0) ? 3.0 : 0.0;
      for (index_t j = 0; j < nr; ++j)
        want += double(c_ft[std::size_t(i + j * ldc)]);
      EXPECT_NEAR(double(cc_ref[std::size_t(i)]), want,
                  tol * std::max(1.0, std::abs(want)))
          << "isa=" << isa_name(ks.isa) << " row " << i;
    }
  }
}

TEST_P(KernelTestF64, BaseMatchesReference) {
  run_base_kernel_case<double>(GetParam());
}
TEST_P(KernelTestF64, FtMatchesBaseAndChecksums) {
  run_ft_kernel_case<double>(GetParam());
}
TEST_P(KernelTestF32, BaseMatchesReference) {
  run_base_kernel_case<float>(GetParam());
}
TEST_P(KernelTestF32, FtMatchesBaseAndChecksums) {
  run_ft_kernel_case<float>(GetParam());
}

INSTANTIATE_TEST_SUITE_P(KcSweep, KernelTestF64,
                         ::testing::Values<index_t>(1, 2, 3, 8, 17, 64, 256,
                                                    333));
INSTANTIATE_TEST_SUITE_P(KcSweep, KernelTestF32,
                         ::testing::Values<index_t>(1, 2, 3, 8, 17, 64, 256,
                                                    333));

class Avx512ShapeSweep : public ::testing::TestWithParam<index_t> {};

TEST_P(Avx512ShapeSweep, AlternativeTileHeightsMatchReference) {
  if (!cpu_features().has_avx512_kernel_support())
    GTEST_SKIP() << "no AVX-512";
  const index_t mr = GetParam();
  const KernelSet<double> ks = avx512_kernels_f64_mr(mr);
  ASSERT_EQ(ks.mr, mr);
  const index_t kc = 97;
  AlignedBuffer<double> a(std::size_t(ks.mr * kc));
  AlignedBuffer<double> b(std::size_t(ks.nr * kc));
  Xoshiro256 rng(mr);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = rng.uniform(-1, 1);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = rng.uniform(-1, 1);
  std::vector<double> c(std::size_t(ks.mr * ks.nr), 0.25);
  std::vector<double> ref = c;
  std::vector<double> c_ft = c;
  std::vector<double> cr(std::size_t(ks.nr * ks.cr_lanes), 0.0);
  std::vector<double> cc(std::size_t(ks.mr), 0.0);

  ks.base(kc, a.data(), b.data(), c.data(), ks.mr);
  reference_tile<double>(ks.mr, ks.nr, kc, a.data(), b.data(), ref, ks.mr);
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c[i], ref[i], 1e-12) << "mr=" << mr;

  ks.ft(kc, a.data(), b.data(), c_ft.data(), ks.mr, cr.data(), cc.data());
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_EQ(c_ft[i], c[i]) << "FT must be bitwise equal, mr=" << mr;
  for (index_t i = 0; i < ks.mr; ++i) {
    double want = 0.0;
    for (index_t j = 0; j < ks.nr; ++j)
      want += c_ft[std::size_t(i + j * ks.mr)];
    EXPECT_NEAR(cc[std::size_t(i)], want, 1e-11) << "mr=" << mr;
  }
}

INSTANTIATE_TEST_SUITE_P(TileHeights, Avx512ShapeSweep,
                         ::testing::Values<index_t>(8, 16, 24));

TEST(KernelDispatch, EnvShapeOverrideKeepsGemmCorrect) {
  if (!cpu_features().has_avx512_kernel_support())
    GTEST_SKIP() << "no AVX-512";
  ::setenv("FTGEMM_KERNEL_MR", "24", 1);
  index_t mr = 0, nr = 0;
  register_tile(Isa::kAvx512, 8, mr, nr);
  EXPECT_EQ(mr, 24) << "plan must agree with the dispatched kernel";
  EXPECT_EQ(get_kernel_set<double>(Isa::kAvx512).mr, 24);
  ::setenv("FTGEMM_KERNEL_MR", "13", 1);  // invalid -> sanitized to 16
  register_tile(Isa::kAvx512, 8, mr, nr);
  EXPECT_EQ(mr, 16);
  EXPECT_EQ(get_kernel_set<double>(Isa::kAvx512).mr, 16);
  ::unsetenv("FTGEMM_KERNEL_MR");
}

TEST(KernelDispatch, ReturnsRequestedIsa) {
  EXPECT_EQ(get_kernel_set<double>(Isa::kScalar).isa, Isa::kScalar);
  EXPECT_EQ(get_kernel_set<double>(Isa::kAvx2).isa, Isa::kAvx2);
  EXPECT_EQ(get_kernel_set<double>(Isa::kAvx512).isa, Isa::kAvx512);
  EXPECT_EQ(get_kernel_set<float>(Isa::kAvx512).isa, Isa::kAvx512);
}

TEST(KernelDispatch, AllKernelPointersNonNull) {
  for (Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512}) {
    const auto kd = get_kernel_set<double>(isa);
    EXPECT_NE(kd.base, nullptr);
    EXPECT_NE(kd.ft, nullptr);
    const auto kf = get_kernel_set<float>(isa);
    EXPECT_NE(kf.base, nullptr);
    EXPECT_NE(kf.ft, nullptr);
  }
}

}  // namespace
}  // namespace ftgemm
