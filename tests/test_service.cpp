// GemmService differential suite: the async front-end must deliver
// *bit-identical* results to the synchronous entry points for every routing
// decision its dispatcher can make — direct dispatch, coalesced-into-
// batched, any priority, either team backend, both precisions — plus the
// lifecycle surface: cancellation, pause/resume, queue-full backpressure,
// shutdown with in-flight requests, and an 8-client soak with lease/plan
// accounting (mirroring test_concurrent.cpp one layer up the stack).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "core/context.hpp"
#include "core/gemm.hpp"
#include "serve/service.hpp"
#include "test_common.hpp"

namespace ftgemm {
namespace {

using serve::GemmFuture;
using serve::GemmResult;
using serve::GemmService;
using serve::Priority;
using serve::RejectReason;
using serve::RequestStatus;
using serve::ServiceConfig;
using serve::make_gemm_request;
using serve::make_strided_batched_request;
using testing::GemmCase;
using testing::Problem;
using testing::expect_matrix_near;
using testing::gemm_tolerance;
using testing::reference_result;

/// Synchronous oracle: the very entry point the service claims to match.
template <typename T>
FtReport run_sync(const GemmCase& cs, bool ft, const Problem<T>& p,
                  Matrix<T>& c, const Options& opts) {
  if (ft) {
    if constexpr (sizeof(T) == 8) {
      return ft_dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k,
                      cs.alpha, p.a.data(), p.a.ld(), p.b.data(), p.b.ld(),
                      cs.beta, c.data(), c.ld(), opts);
    } else {
      return ft_sgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k,
                      T(cs.alpha), p.a.data(), p.a.ld(), p.b.data(),
                      p.b.ld(), T(cs.beta), c.data(), c.ld(), opts);
    }
  }
  if constexpr (sizeof(T) == 8) {
    dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
          p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), cs.beta, c.data(),
          c.ld(), opts);
  } else {
    sgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, T(cs.alpha),
          p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), T(cs.beta), c.data(),
          c.ld(), opts);
  }
  return {};
}

template <typename T>
void differential_case(GemmService& service, const GemmCase& cs, bool ft,
                       const Options& opts, Priority priority,
                       std::uint64_t seed, int shard_hint = -1) {
  Problem<T> p(cs, seed);
  Matrix<T> c_sync = p.c.clone();
  const FtReport sync_rep = run_sync<T>(cs, ft, p, c_sync, opts);

  Matrix<T> c_async = p.c.clone();
  auto req = make_gemm_request<T>(
      ft, Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, T(cs.alpha),
      p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), T(cs.beta), c_async.data(),
      c_async.ld(), opts, priority);
  req.shard_hint = shard_hint;
  GemmFuture fut = service.submit(req);
  const GemmResult& res = fut.wait();

  ASSERT_EQ(res.status, RequestStatus::kDone) << cs;
  EXPECT_TRUE(res.ok()) << cs;
  expect_matrix_near(c_async, c_sync, 0.0, "async vs sync " + cs.name());
  if (ft) {
    EXPECT_EQ(res.report.panels, sync_rep.panels) << cs;
    EXPECT_EQ(res.report.errors_detected, sync_rep.errors_detected) << cs;
    EXPECT_EQ(res.report.uncorrectable_panels, sync_rep.uncorrectable_panels)
        << cs;
  }
}

TEST(ServiceDifferential, BitIdenticalToSyncAcrossShapesBackendsPriorities) {
  GemmService service;
  const GemmCase shapes[] = {
      {48, 40, 64},                                        // fast path
      {96, 80, 260},                                       // multi-panel
      {65, 43, 87, Trans::kTrans, Trans::kNoTrans},        // Ta
      {64, 300, 320, Trans::kNoTrans, Trans::kTrans},      // Tb, wide
      {60, 60, 60, Trans::kNoTrans, Trans::kNoTrans, -1.5, 0.5},
  };
  const RuntimeBackend backends[] = {RuntimeBackend::kOpenMP,
                                     RuntimeBackend::kPool};
  const Priority priorities[] = {Priority::kLow, Priority::kNormal,
                                 Priority::kHigh};
  int i = 0;
  for (const GemmCase& cs : shapes) {
    for (const RuntimeBackend backend : backends) {
      for (const bool ft : {false, true}) {
        Options opts;
        opts.runtime = backend;
        opts.threads = 1 + i % 3;
        const Priority pri = priorities[i % 3];
        differential_case<double>(service, cs, ft, opts, pri,
                                  std::uint64_t(100 + i));
        differential_case<float>(service, cs, ft, opts, pri,
                                 std::uint64_t(200 + i));
        ++i;
      }
    }
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_EQ(stats.cancelled + stats.rejected, 0u);
}

TEST(ServiceDifferential, CoalescedRoutingIsBitIdenticalToSync) {
  // Stage the queue while paused so the dispatcher's first sweep merges the
  // whole set: all requests share one fast-path fingerprint, so the service
  // must route them through a single batched inter-scheduler call — and
  // every member must still equal its own synchronous twin bit-for-bit.
  ServiceConfig cfg;
  cfg.start_paused = true;
  cfg.max_inflight = 1;
  cfg.max_coalesce = 16;
  cfg.shards = 1;  // one dispatcher: the whole set must merge into one call
  GemmService service(cfg);

  const GemmCase cs{48, 40, 64, Trans::kNoTrans, Trans::kTrans, 1.25, -0.5};
  Options opts;
  opts.threads = 3;  // fast path pins to 1 thread either route
  const int kRequests = 10;

  std::vector<Problem<double>> problems;
  std::vector<Matrix<double>> c_sync, c_async;
  problems.reserve(kRequests);
  for (int r = 0; r < kRequests; ++r) {
    problems.emplace_back(cs, std::uint64_t(40 + r));
    c_sync.push_back(problems.back().c.clone());
    c_async.push_back(problems.back().c.clone());
  }
  std::vector<FtReport> sync_reps;
  for (int r = 0; r < kRequests; ++r) {
    sync_reps.push_back(
        run_sync<double>(cs, true, problems[std::size_t(r)],
                         c_sync[std::size_t(r)], opts));
  }

  std::vector<GemmFuture> futures;
  for (int r = 0; r < kRequests; ++r) {
    const Problem<double>& p = problems[std::size_t(r)];
    futures.push_back(service.submit(make_gemm_request<double>(
        true, Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
        p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), cs.beta,
        c_async[std::size_t(r)].data(), c_async[std::size_t(r)].ld(), opts)));
  }
  EXPECT_EQ(service.queue_depth(), std::size_t(kRequests));
  service.resume();

  for (int r = 0; r < kRequests; ++r) {
    const GemmResult& res = futures[std::size_t(r)].wait();
    ASSERT_EQ(res.status, RequestStatus::kDone) << "request " << r;
    EXPECT_TRUE(res.coalesced) << "request " << r
                               << " should ride the merged batch";
    EXPECT_TRUE(res.ok()) << "request " << r;
    expect_matrix_near(c_async[std::size_t(r)], c_sync[std::size_t(r)], 0.0,
                       "coalesced member " + std::to_string(r));
    EXPECT_EQ(res.report.panels, sync_reps[std::size_t(r)].panels);
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.coalesced_batches, 1u);
  EXPECT_EQ(stats.coalesced_members, std::uint64_t(kRequests));
  EXPECT_EQ(stats.completed, std::uint64_t(kRequests));
}

TEST(ServiceDifferential, StridedBatchedRequestMatchesSyncBatched) {
  const index_t n = 32, batch = 5;
  const GemmCase whole{n, n * batch, n};
  Problem<double> p(whole, 77);
  Options base;
  base.threads = 2;

  Matrix<double> c_sync = p.c.clone();
  BatchOptions bopts;
  bopts.base = base;
  const BatchReport sync_rep = ft_gemm_strided_batched<double>(
      Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n, n, n, 1.0,
      p.a.data(), p.a.ld(), 0, p.b.data(), p.b.ld(), n * p.b.ld(), 0.0,
      c_sync.data(), c_sync.ld(), n * c_sync.ld(), batch, bopts);

  GemmService service;
  Matrix<double> c_async = p.c.clone();
  GemmFuture fut = service.submit(make_strided_batched_request<double>(
      true, Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n, n, n,
      1.0, p.a.data(), p.a.ld(), 0, p.b.data(), p.b.ld(), n * p.b.ld(), 0.0,
      c_async.data(), c_async.ld(), n * c_async.ld(), batch, base));
  const GemmResult& res = fut.wait();

  ASSERT_EQ(res.status, RequestStatus::kDone);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.batch.problems, batch);
  EXPECT_EQ(res.batch.dirty_problems, sync_rep.dirty_problems);
  expect_matrix_near(c_async, c_sync, 0.0, "strided-batched async vs sync");
  EXPECT_EQ(service.stats().batched_calls, 1u);
}

TEST(ServiceLifecycle, PriorityLanesDrainHighestFirst) {
  ServiceConfig cfg;
  cfg.start_paused = true;
  cfg.max_inflight = 1;
  cfg.coalesce = false;  // keep one completion per request, in lane order
  cfg.shards = 1;        // lane order is a per-shard guarantee
  cfg.steal = false;
  GemmService service(cfg);

  const GemmCase cs{32, 32, 32};
  std::vector<Problem<double>> problems;
  std::vector<Matrix<double>> cs_out;
  std::mutex order_m;
  std::vector<int> order;
  std::vector<GemmFuture> futures;

  const Priority plan[] = {Priority::kLow,    Priority::kLow,
                           Priority::kNormal, Priority::kNormal,
                           Priority::kHigh,   Priority::kHigh};
  for (int r = 0; r < 6; ++r) {
    problems.emplace_back(cs, std::uint64_t(60 + r));
    cs_out.push_back(problems.back().c.clone());
  }
  for (int r = 0; r < 6; ++r) {
    const Problem<double>& p = problems[std::size_t(r)];
    GemmFuture fut = service.submit(make_gemm_request<double>(
        true, Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
        p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), cs.beta,
        cs_out[std::size_t(r)].data(), cs_out[std::size_t(r)].ld(), {},
        plan[r]));
    fut.then([r, &order_m, &order](const GemmResult&) {
      std::lock_guard<std::mutex> lk(order_m);
      order.push_back(r);
    });
    futures.push_back(std::move(fut));
  }
  service.resume();
  service.shutdown(true);

  ASSERT_EQ(order.size(), 6u);
  // Highs (4, 5) first, lows (0, 1) last; FIFO within a lane.
  EXPECT_EQ(order[0], 4);
  EXPECT_EQ(order[1], 5);
  EXPECT_EQ(order[2], 2);
  EXPECT_EQ(order[3], 3);
  EXPECT_EQ(order[4], 0);
  EXPECT_EQ(order[5], 1);
}

TEST(ServiceLifecycle, HoldoverSurvivesHigherLaneMismatchSweep) {
  // Regression: a coalescing sweep parks its one popped-but-mismatched
  // entry in a holdover slot.  With a single per-shard slot, a later sweep
  // whose head came from a HIGHER lane could park its own mismatch on top
  // of a still-waiting lower-lane holdover — destroying that request
  // without ever settling it (the client's wait() hung forever and the
  // leaked queue reservation wedged shutdown(drain)).  The slots are per
  // lane now; this test stages the exact overwrite interleaving and
  // requires every future to settle.
  ServiceConfig cfg;
  cfg.start_paused = true;
  cfg.shards = 1;
  cfg.steal = false;
  cfg.max_inflight = 1;  // groups run on the dispatcher thread itself, so
                         // a blocking continuation holds the sweep open
  cfg.inline_fast_lane = false;  // the high-lane pair below must queue
  GemmService service(cfg);

  // Four fast-path (coalescible) shapes with four distinct plan
  // fingerprints: every sweep that pops a second entry mismatches and
  // must park it.
  const GemmCase shapes[] = {
      {48, 40, 64},  // [0] low-lane head of sweep 1
      {40, 48, 64},  // [1] low-lane mismatch -> parked holdover
      {32, 48, 64},  // [2] high-lane head of sweep 2
      {64, 40, 32},  // [3] high-lane mismatch -> the overwriting park
  };
  const Priority lanes[] = {Priority::kLow, Priority::kLow, Priority::kHigh,
                            Priority::kHigh};
  std::vector<Problem<double>> problems;
  std::vector<Matrix<double>> c_sync, c_async;
  for (int r = 0; r < 4; ++r) {
    problems.emplace_back(shapes[r], std::uint64_t(500 + r));
    c_sync.push_back(problems.back().c.clone());
    c_async.push_back(problems.back().c.clone());
    run_sync<double>(shapes[r], true, problems.back(),
                     c_sync[std::size_t(r)], {});
  }
  auto submit = [&](int r) {
    const Problem<double>& p = problems[std::size_t(r)];
    const GemmCase& cs = shapes[r];
    return service.submit(make_gemm_request<double>(
        true, Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
        p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), cs.beta,
        c_async[std::size_t(r)].data(), c_async[std::size_t(r)].ld(), {},
        lanes[r]));
  };

  std::vector<GemmFuture> futures;
  futures.push_back(submit(0));
  futures.push_back(submit(1));
  // Hold the dispatcher inside sweep 1's execution (after it parked
  // request 1 in the low lane's holdover slot) until the high-lane pair
  // is staged behind it.
  std::atomic<bool> sweep1_executing{false};
  std::atomic<bool> release{false};
  futures[0].then([&](const GemmResult&) {
    sweep1_executing.store(true);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  service.resume();
  while (!sweep1_executing.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  futures.push_back(submit(2));
  futures.push_back(submit(3));
  // The parked holdover plus the two high-lane arrivals.
  EXPECT_EQ(service.queue_depth(), 3u);
  release.store(true);

  // Sweep 2 pops request 2 as its head, mismatches on request 3, and must
  // park it WITHOUT clobbering the still-parked request 1.
  bool all_settled = true;
  for (int r = 0; r < 4; ++r) {
    const bool settled = futures[std::size_t(r)].wait_for(30.0);
    EXPECT_TRUE(settled) << "request " << r
                         << " was lost from a holdover slot";
    all_settled = all_settled && settled;
  }
  // A lost request leaks its queue reservation and drain would spin
  // forever; fall back to cancel-mode shutdown so a regression fails
  // instead of hanging.
  service.shutdown(all_settled);
  if (!all_settled) return;
  for (int r = 0; r < 4; ++r) {
    const GemmResult& res = futures[std::size_t(r)].wait();
    ASSERT_EQ(res.status, RequestStatus::kDone) << "request " << r;
    EXPECT_TRUE(res.ok()) << "request " << r;
    expect_matrix_near(c_async[std::size_t(r)], c_sync[std::size_t(r)], 0.0,
                       "holdover request " + std::to_string(r));
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.cancelled, 0u);
  EXPECT_EQ(stats.inline_executed, 0u);
}

TEST(ServiceLifecycle, CancelQueuedRequestLeavesCUntouched) {
  ServiceConfig cfg;
  cfg.start_paused = true;
  GemmService service(cfg);

  const GemmCase cs{40, 40, 40};
  Problem<double> p0(cs, 1), p1(cs, 2), p2(cs, 3);
  Matrix<double> c0 = p0.c.clone(), c2 = p2.c.clone();
  Matrix<double> c1(cs.m, cs.n);
  c1.fill(42.0);  // sentinel: a cancelled request must never write C
  const Matrix<double> c1_before = c1.clone();

  auto req = [&](const Problem<double>& p, Matrix<double>& c) {
    return make_gemm_request<double>(true, Layout::kColMajor, cs.ta, cs.tb,
                                     cs.m, cs.n, cs.k, cs.alpha, p.a.data(),
                                     p.a.ld(), p.b.data(), p.b.ld(), cs.beta,
                                     c.data(), c.ld());
  };
  GemmFuture f0 = service.submit(req(p0, c0));
  GemmFuture f1 = service.submit(req(p1, c1));
  GemmFuture f2 = service.submit(req(p2, c2));

  EXPECT_TRUE(f1.cancel());
  EXPECT_FALSE(f1.cancel()) << "second cancel must report failure";
  EXPECT_EQ(f1.wait().status, RequestStatus::kCancelled);

  service.resume();
  EXPECT_EQ(f0.wait().status, RequestStatus::kDone);
  EXPECT_EQ(f2.wait().status, RequestStatus::kDone);
  EXPECT_FALSE(f0.cancel()) << "cancel after completion must fail";
  expect_matrix_near(c1, c1_before, 0.0, "cancelled C");

  service.shutdown(true);
  EXPECT_EQ(service.stats().cancelled, 1u);
  EXPECT_EQ(service.stats().completed, 2u);
}

TEST(ServiceLifecycle, ShutdownDrainCompletesInflightAndQueued) {
  ServiceConfig cfg;
  cfg.max_inflight = 2;
  GemmService service(cfg);

  const GemmCase cs{128, 96, 200};
  const int kRequests = 5;
  std::vector<Problem<double>> problems;
  std::vector<Matrix<double>> out;
  std::vector<GemmFuture> futures;
  for (int r = 0; r < kRequests; ++r) {
    problems.emplace_back(cs, std::uint64_t(80 + r));
    out.push_back(problems.back().c.clone());
  }
  for (int r = 0; r < kRequests; ++r) {
    const Problem<double>& p = problems[std::size_t(r)];
    futures.push_back(service.submit(make_gemm_request<double>(
        true, Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
        p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), cs.beta,
        out[std::size_t(r)].data(), out[std::size_t(r)].ld())));
  }
  service.shutdown(true);  // must execute everything already admitted

  for (int r = 0; r < kRequests; ++r) {
    const GemmResult& res = futures[std::size_t(r)].wait();
    ASSERT_EQ(res.status, RequestStatus::kDone) << "request " << r;
    EXPECT_TRUE(res.ok());
    const Matrix<double> ref =
        reference_result(cs, problems[std::size_t(r)]);
    expect_matrix_near(out[std::size_t(r)], ref,
                       gemm_tolerance<double>(cs.k),
                       "drained request " + std::to_string(r));
  }
  EXPECT_EQ(service.inflight(), 0);
  EXPECT_EQ(service.queue_depth(), 0u);

  // Post-shutdown submissions are rejected, not queued.
  Problem<double> p(cs, 99);
  Matrix<double> c = p.c.clone();
  GemmFuture rejected = service.submit(make_gemm_request<double>(
      true, Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
      p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), cs.beta, c.data(),
      c.ld()));
  EXPECT_EQ(rejected.wait().status, RequestStatus::kRejected);
}

TEST(ServiceLifecycle, ShutdownNoDrainCancelsQueued) {
  ServiceConfig cfg;
  cfg.start_paused = true;
  GemmService service(cfg);

  const GemmCase cs{32, 32, 32};
  std::vector<Problem<double>> problems;
  std::vector<Matrix<double>> out;
  std::vector<GemmFuture> futures;
  for (int r = 0; r < 4; ++r) {
    problems.emplace_back(cs, std::uint64_t(10 + r));
    out.emplace_back(cs.m, cs.n);
    out.back().fill(7.0);
  }
  for (int r = 0; r < 4; ++r) {
    const Problem<double>& p = problems[std::size_t(r)];
    futures.push_back(service.submit(make_gemm_request<double>(
        true, Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
        p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), cs.beta,
        out[std::size_t(r)].data(), out[std::size_t(r)].ld())));
  }
  service.shutdown(false);

  Matrix<double> sentinel(cs.m, cs.n);
  sentinel.fill(7.0);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(futures[std::size_t(r)].wait().status,
              RequestStatus::kCancelled)
        << "request " << r;
    expect_matrix_near(out[std::size_t(r)], sentinel, 0.0,
                       "cancelled C " + std::to_string(r));
  }
  EXPECT_EQ(service.stats().cancelled, 4u);
  EXPECT_EQ(service.stats().completed, 0u);
}

TEST(ServiceLifecycle, QueueFullBackpressure) {
  ServiceConfig cfg;
  cfg.start_paused = true;
  cfg.queue_capacity = 2;  // per shard; one shard so both threads share it
  cfg.shards = 1;
  GemmService service(cfg);

  const GemmCase cs{32, 32, 32};
  std::vector<Problem<double>> problems;
  std::vector<Matrix<double>> out;
  for (int r = 0; r < 4; ++r) {
    problems.emplace_back(cs, std::uint64_t(20 + r));
    out.push_back(problems.back().c.clone());
  }
  auto req = [&](int r) {
    const Problem<double>& p = problems[std::size_t(r)];
    return make_gemm_request<double>(true, Layout::kColMajor, cs.ta, cs.tb,
                                     cs.m, cs.n, cs.k, cs.alpha, p.a.data(),
                                     p.a.ld(), p.b.data(), p.b.ld(), cs.beta,
                                     out[std::size_t(r)].data(),
                                     out[std::size_t(r)].ld());
  };

  GemmFuture f0 = service.submit(req(0));
  GemmFuture f1 = service.submit(req(1));
  EXPECT_EQ(service.queue_depth(), 2u);

  // Non-blocking admission sheds load when the queue is full...
  GemmFuture shed = service.try_submit(req(2));
  EXPECT_EQ(shed.wait().status, RequestStatus::kRejected);
  EXPECT_GE(service.stats().rejected, 1u);

  // ...while blocking admission applies backpressure until space opens.
  std::atomic<bool> admitted{false};
  GemmFuture f3;
  std::thread submitter([&] {
    f3 = service.submit(req(3));
    admitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(admitted.load()) << "submit must block on a full queue";

  service.resume();
  submitter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(f0.wait().status, RequestStatus::kDone);
  EXPECT_EQ(f1.wait().status, RequestStatus::kDone);
  EXPECT_EQ(f3.wait().status, RequestStatus::kDone);
}

/// try_submit's kRejected future must say *which* resource was exhausted —
/// the signal a load-shedding client keys its reaction on.
TEST(ServiceRejectReasons, TrySubmitReportsWhichResourceWasExhausted) {
  ServiceConfig cfg;
  cfg.shards = 1;
  cfg.queue_capacity = 1;
  cfg.start_paused = true;
  GemmService service(cfg);

  const GemmCase cs{32, 32, 32};
  Problem<double> p(cs, 5);
  Matrix<double> c = p.c.clone();
  const auto req = [&] {
    return make_gemm_request<double>(true, Layout::kColMajor, cs.ta, cs.tb,
                                     cs.m, cs.n, cs.k, cs.alpha, p.a.data(),
                                     p.a.ld(), p.b.data(), p.b.ld(), cs.beta,
                                     c.data(), c.ld());
  };

  {  // invalid at the door
    auto bad = req();
    bad.m = -1;
    const GemmResult res = service.try_submit(bad).wait();
    EXPECT_EQ(res.status, RequestStatus::kRejected);
    EXPECT_EQ(res.reject, RejectReason::kInvalidRequest);
  }

  // Fill the paused shard to capacity: full *and* paused reports kPaused
  // (resume the service, don't back off).
  GemmFuture queued = service.try_submit(req());
  EXPECT_EQ(service.queue_depth(), 1u);
  {
    const GemmResult res = service.try_submit(req()).wait();
    EXPECT_EQ(res.status, RequestStatus::kRejected);
    EXPECT_EQ(res.reject, RejectReason::kPaused);
  }

  service.resume();
  EXPECT_EQ(queued.wait().status, RequestStatus::kDone);
  service.shutdown(true);
  {
    const GemmResult res = service.try_submit(req()).wait();
    EXPECT_EQ(res.status, RequestStatus::kRejected);
    EXPECT_EQ(res.reject, RejectReason::kShuttingDown);
  }

  // kQueueFull proper needs a running-but-saturated service: a heavyweight
  // GEMM occupies the only dispatcher while the queue is full.
  ServiceConfig busy_cfg;
  busy_cfg.shards = 1;
  busy_cfg.queue_capacity = 1;
  busy_cfg.max_inflight = 1;
  busy_cfg.inline_fast_lane = false;
  GemmService busy(busy_cfg);
  const GemmCase heavy{256, 256, 256};
  Problem<double> hp(heavy, 6);
  Matrix<double> hc = hp.c.clone();
  GemmFuture running = busy.submit(make_gemm_request<double>(
      true, Layout::kColMajor, heavy.ta, heavy.tb, heavy.m, heavy.n, heavy.k,
      heavy.alpha, hp.a.data(), hp.a.ld(), hp.b.data(), hp.b.ld(), heavy.beta,
      hc.data(), hc.ld()));
  Matrix<double> qc = p.c.clone();
  auto qreq = req();
  qreq.c = qc.data();
  GemmFuture waiting = busy.submit(qreq);  // parks behind the heavy GEMM
  {
    const GemmResult res = busy.try_submit(req()).wait();
    EXPECT_EQ(res.status, RequestStatus::kRejected);
    EXPECT_EQ(res.reject, RejectReason::kQueueFull);
  }
  EXPECT_EQ(running.wait().status, RequestStatus::kDone);
  EXPECT_EQ(waiting.wait().status, RequestStatus::kDone);
}

/// The inline fast lane must be invisible except in latency: bit-identical
/// C, bit-identical FT reports, and its own accounting column.
TEST(ServiceInline, FastLaneIsBitIdenticalToQueuedExecution) {
  ServiceConfig on;
  on.shards = 2;
  GemmService s_inline(on);
  ServiceConfig off = on;
  off.inline_fast_lane = false;
  GemmService s_queued(off);

  const GemmCase cs{48, 40, 64};  // resolves to the execute_small fast path
  Options opts;
  opts.threads = 2;  // the planner pins fast-path plans to 1 regardless
  const int kRounds = 6;
  for (int r = 0; r < kRounds; ++r) {
    Problem<double> p(cs, std::uint64_t(900 + r));
    Matrix<double> c_sync = p.c.clone();
    const FtReport sync_rep = run_sync<double>(cs, true, p, c_sync, opts);
    Matrix<double> c_in = p.c.clone();
    Matrix<double> c_q = p.c.clone();
    const auto req = [&](Matrix<double>& c) {
      return make_gemm_request<double>(true, Layout::kColMajor, cs.ta, cs.tb,
                                       cs.m, cs.n, cs.k, cs.alpha, p.a.data(),
                                       p.a.ld(), p.b.data(), p.b.ld(),
                                       cs.beta, c.data(), c.ld(), opts);
    };
    const GemmResult ri = s_inline.submit(req(c_in)).wait();
    const GemmResult rq = s_queued.submit(req(c_q)).wait();
    ASSERT_EQ(ri.status, RequestStatus::kDone);
    ASSERT_EQ(rq.status, RequestStatus::kDone);
    EXPECT_TRUE(ri.inlined) << "idle service + fast-path plan must inline";
    EXPECT_FALSE(rq.inlined);
    expect_matrix_near(c_in, c_sync, 0.0,
                       "inline round " + std::to_string(r));
    expect_matrix_near(c_q, c_sync, 0.0,
                       "queued round " + std::to_string(r));
    EXPECT_EQ(ri.report.panels, sync_rep.panels);
    EXPECT_EQ(ri.report.errors_detected, sync_rep.errors_detected);
  }
  EXPECT_EQ(s_inline.stats().inline_executed, std::uint64_t(kRounds));
  EXPECT_EQ(s_inline.stats().completed, std::uint64_t(kRounds));
  EXPECT_EQ(s_queued.stats().inline_executed, 0u);
}

TEST(ServiceInline, ClosedWhilePausedSoStagedOrderHolds) {
  ServiceConfig cfg;
  cfg.shards = 1;
  cfg.start_paused = true;
  GemmService service(cfg);

  const GemmCase cs{48, 40, 64};
  Problem<double> p(cs, 77);
  Matrix<double> c = p.c.clone();
  GemmFuture fut = service.submit(make_gemm_request<double>(
      true, Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
      p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), cs.beta, c.data(),
      c.ld()));
  EXPECT_FALSE(fut.settled()) << "paused service must queue, not inline";
  EXPECT_EQ(service.queue_depth(), 1u);
  service.resume();
  const GemmResult res = fut.wait();
  EXPECT_EQ(res.status, RequestStatus::kDone);
  EXPECT_FALSE(res.inlined);
  EXPECT_EQ(service.stats().inline_executed, 0u);
}

/// submit_all on an idle service merges a same-fingerprint window into ONE
/// batched call executed on the calling thread: the pipelined-client shape
/// that motivates the fast lane.
TEST(ServiceInline, SubmitAllMergesTheWindowIntoOneInlineBatch) {
  ServiceConfig cfg;
  cfg.shards = 2;
  cfg.max_coalesce = 16;
  GemmService service(cfg);

  const GemmCase cs{48, 40, 64, Trans::kNoTrans, Trans::kTrans, 1.25, -0.5};
  Options opts;
  opts.threads = 3;
  const int kRequests = 8;
  std::vector<Problem<double>> problems;
  std::vector<Matrix<double>> c_sync, c_async;
  for (int r = 0; r < kRequests; ++r) {
    problems.emplace_back(cs, std::uint64_t(700 + r));
    c_sync.push_back(problems.back().c.clone());
    c_async.push_back(problems.back().c.clone());
    run_sync<double>(cs, true, problems.back(), c_sync[std::size_t(r)], opts);
  }
  std::vector<serve::GemmRequest> reqs;
  for (int r = 0; r < kRequests; ++r) {
    const Problem<double>& p = problems[std::size_t(r)];
    reqs.push_back(make_gemm_request<double>(
        true, Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
        p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), cs.beta,
        c_async[std::size_t(r)].data(), c_async[std::size_t(r)].ld(), opts));
  }
  std::vector<GemmFuture> futures = service.submit_all(reqs);
  ASSERT_EQ(futures.size(), std::size_t(kRequests));
  for (int r = 0; r < kRequests; ++r) {
    const GemmResult res = futures[std::size_t(r)].wait();
    ASSERT_EQ(res.status, RequestStatus::kDone) << "request " << r;
    EXPECT_TRUE(res.inlined) << "request " << r;
    EXPECT_TRUE(res.coalesced) << "request " << r;
    expect_matrix_near(c_async[std::size_t(r)], c_sync[std::size_t(r)], 0.0,
                       "inline window member " + std::to_string(r));
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.inline_executed, std::uint64_t(kRequests));
  EXPECT_EQ(stats.coalesced_batches, 1u);
  EXPECT_EQ(stats.coalesced_members, std::uint64_t(kRequests));
  EXPECT_EQ(stats.completed, std::uint64_t(kRequests));
}

/// The sharding must be invisible in results: every shard count and every
/// shard_hint routing delivers the synchronous bits, including resident-A
/// cache traffic.
TEST(ShardedDifferential, BitIdenticalAcrossShardCountsAndHints) {
  for (const int shards : {1, 2, 4}) {
    clear_process_caches();
    ServiceConfig cfg;
    cfg.shards = shards;
    cfg.inline_fast_lane = false;  // force the ring/dispatcher/steal path
    GemmService service(cfg);
    ASSERT_EQ(service.shards(), shards);

    const GemmCase shapes[] = {
        {48, 40, 64},                                    // fast path
        {96, 80, 260},                                   // multi-panel
        {65, 43, 87, Trans::kTrans, Trans::kNoTrans},    // Ta
        {60, 60, 60, Trans::kNoTrans, Trans::kNoTrans, -1.5, 0.5},
    };
    int i = 0;
    for (const GemmCase& cs : shapes) {
      for (const bool ft : {false, true}) {
        Options opts;
        opts.threads = 1 + i % 2;
        const Priority pri = Priority(i % 3);
        const int hint = i % shards;
        differential_case<double>(service, cs, ft, opts, pri,
                                  std::uint64_t(1000 + i), hint);
        differential_case<float>(service, cs, ft, opts, pri,
                                 std::uint64_t(2000 + i), hint);
        ++i;
      }
    }

    // Resident-A repeated-weight traffic spread across the shards: the
    // operand cache is process-wide, so hints must not affect hit behavior.
    const GemmCase wcs{64, 48, 96};
    Options ropts;
    ropts.threads = 1;
    ropts.resident_a = true;
    Matrix<double> w(wcs.m, wcs.k);
    w.fill_random(4242);
    const int kRounds = 4;
    for (int r = 0; r < kRounds; ++r) {
      Matrix<double> b(wcs.k, wcs.n);
      b.fill_random(std::uint64_t(4300 + r));
      Matrix<double> c_sync(wcs.m, wcs.n), c_async(wcs.m, wcs.n);
      c_sync.fill(0.0);
      c_async.fill(0.0);
      ft_dgemm(Layout::kColMajor, wcs.ta, wcs.tb, wcs.m, wcs.n, wcs.k, 1.0,
               w.data(), w.ld(), b.data(), b.ld(), 0.0, c_sync.data(),
               c_sync.ld(), ropts);
      auto req = make_gemm_request<double>(
          true, Layout::kColMajor, wcs.ta, wcs.tb, wcs.m, wcs.n, wcs.k, 1.0,
          w.data(), w.ld(), b.data(), b.ld(), 0.0, c_async.data(),
          c_async.ld(), ropts);
      req.shard_hint = r % shards;
      const GemmResult res = service.submit(req).wait();
      ASSERT_EQ(res.status, RequestStatus::kDone);
      EXPECT_TRUE(res.report.resident_hit || r == 0)
          << "round " << r << " at " << shards << " shards";
      expect_matrix_near(c_async, c_sync, 0.0,
                         "resident round " + std::to_string(r) + " at " +
                             std::to_string(shards) + " shards");
    }

    service.shutdown(true);
    const auto stats = service.stats();
    EXPECT_EQ(stats.completed, stats.submitted);
    EXPECT_EQ(stats.rejected + stats.cancelled, 0u);
    EXPECT_EQ(stats.inline_executed, 0u);
  }
}

/// Work stealing must preserve both batching and bits: a loaded shard's
/// coalescable run is stolen as a WHOLE group, merges into one batched
/// call on the thief, and every result equals its synchronous twin.
TEST(WorkStealing, StolenGroupsStayCoalescedAndBitIdentical) {
  clear_process_caches();
  ServiceConfig cfg;
  cfg.shards = 2;
  cfg.start_paused = true;  // stage everything on shard 0, then release
  cfg.max_inflight = 1;
  cfg.max_coalesce = 16;
  GemmService service(cfg);

  Options opts;
  opts.threads = 1;
  // Two heavyweights at kHigh keep whichever dispatcher grabs one busy for
  // tens of milliseconds — longer than a scheduler timeslice even on a
  // single hardware thread — so the idle shard is guaranteed CPU for a
  // steal pass while shard 0's queue is still loaded.
  const GemmCase heavy{512, 512, 512};
  const GemmCase small{48, 40, 64};
  const int kSmall = 6;

  std::vector<Problem<double>> hp;
  std::vector<Matrix<double>> h_sync, h_async;
  for (int r = 0; r < 2; ++r) {
    hp.emplace_back(heavy, std::uint64_t(50 + r));
    h_sync.push_back(hp.back().c.clone());
    h_async.push_back(hp.back().c.clone());
    run_sync<double>(heavy, true, hp.back(), h_sync[std::size_t(r)], opts);
  }
  std::vector<Problem<double>> sp;
  std::vector<Matrix<double>> s_sync, s_async;
  for (int r = 0; r < kSmall; ++r) {
    sp.emplace_back(small, std::uint64_t(150 + r));
    s_sync.push_back(sp.back().c.clone());
    s_async.push_back(sp.back().c.clone());
    run_sync<double>(small, true, sp.back(), s_sync[std::size_t(r)], opts);
  }

  std::vector<GemmFuture> heavy_futs, small_futs;
  for (int r = 0; r < 2; ++r) {
    auto req = make_gemm_request<double>(
        true, Layout::kColMajor, heavy.ta, heavy.tb, heavy.m, heavy.n,
        heavy.k, heavy.alpha, hp[std::size_t(r)].a.data(),
        hp[std::size_t(r)].a.ld(), hp[std::size_t(r)].b.data(),
        hp[std::size_t(r)].b.ld(), heavy.beta, h_async[std::size_t(r)].data(),
        h_async[std::size_t(r)].ld(), opts, Priority::kHigh);
    req.shard_hint = 0;
    heavy_futs.push_back(service.submit(req));
  }
  for (int r = 0; r < kSmall; ++r) {
    auto req = make_gemm_request<double>(
        true, Layout::kColMajor, small.ta, small.tb, small.m, small.n,
        small.k, small.alpha, sp[std::size_t(r)].a.data(),
        sp[std::size_t(r)].a.ld(), sp[std::size_t(r)].b.data(),
        sp[std::size_t(r)].b.ld(), small.beta, s_async[std::size_t(r)].data(),
        s_async[std::size_t(r)].ld(), opts, Priority::kNormal);
    req.shard_hint = 0;
    small_futs.push_back(service.submit(req));
  }
  EXPECT_EQ(service.queue_depth(), std::size_t(2 + kSmall));
  service.resume();

  for (int r = 0; r < 2; ++r) {
    const GemmResult res = heavy_futs[std::size_t(r)].wait();
    ASSERT_EQ(res.status, RequestStatus::kDone) << "heavy " << r;
    EXPECT_FALSE(res.coalesced);
    expect_matrix_near(h_async[std::size_t(r)], h_sync[std::size_t(r)], 0.0,
                       "heavy " + std::to_string(r));
  }
  for (int r = 0; r < kSmall; ++r) {
    const GemmResult res = small_futs[std::size_t(r)].wait();
    ASSERT_EQ(res.status, RequestStatus::kDone) << "small " << r;
    EXPECT_TRUE(res.coalesced)
        << "small " << r << " must ride the merged batch even if stolen";
    expect_matrix_near(s_async[std::size_t(r)], s_sync[std::size_t(r)], 0.0,
                       "small " + std::to_string(r));
  }

  service.shutdown(true);
  const auto stats = service.stats();
  EXPECT_GE(stats.steals, 1u) << "the idle shard must have stolen work";
  EXPECT_GE(stats.stolen_requests, 1u);
  EXPECT_EQ(stats.coalesced_batches, 1u)
      << "the run must merge exactly once, owner or thief alike";
  EXPECT_EQ(stats.coalesced_members, std::uint64_t(kSmall));
  EXPECT_EQ(stats.completed, std::uint64_t(2 + kSmall));
  // Every steal the service counted is attributed to a shard; shard 0's
  // traffic was the only stealable backlog.
  std::uint64_t shard_steals = 0;
  for (const auto& ss : stats.shard) shard_steals += ss.steals;
  EXPECT_EQ(shard_steals, stats.steals);
  EXPECT_EQ(stats.shard[0].submitted, std::uint64_t(2 + kSmall));
}

TEST(ServiceErrors, InvalidRequestsAreRejectedAtTheDoor) {
  GemmService service;
  Matrix<double> a(8, 8), b(8, 8), c(8, 8);
  a.fill_random(1);
  b.fill_random(2);
  c.fill(0.0);

  auto base = [&] {
    return make_gemm_request<double>(true, Layout::kColMajor,
                                     Trans::kNoTrans, Trans::kNoTrans, 8, 8,
                                     8, 1.0, a.data(), 8, b.data(), 8, 0.0,
                                     c.data(), 8);
  };

  {  // negative dimension
    auto r = base();
    r.m = -3;
    EXPECT_EQ(service.submit(r).wait().status, RequestStatus::kRejected);
  }
  {  // undersized lda with a readable A
    auto r = base();
    r.lda = 4;
    EXPECT_EQ(service.submit(r).wait().status, RequestStatus::kRejected);
  }
  {  // null C on a writing call
    auto r = base();
    r.c = nullptr;
    EXPECT_EQ(service.submit(r).wait().status, RequestStatus::kRejected);
  }
  {  // null A with alpha != 0 and k > 0
    auto r = base();
    r.a = nullptr;
    EXPECT_EQ(service.submit(r).wait().status, RequestStatus::kRejected);
  }
  {  // non-positive batch
    auto r = base();
    r.batch = 0;
    EXPECT_EQ(service.submit(r).wait().status, RequestStatus::kRejected);
  }
  EXPECT_EQ(service.stats().rejected, 5u);
  EXPECT_EQ(service.stats().submitted, 0u);

  // A valid request still flows after the rejections.
  EXPECT_EQ(service.submit(base()).wait().status, RequestStatus::kDone);
}

/// The serving pattern the resident-operand cache exists for: one weight
/// matrix per layer, fresh activations per request.  Repeated-A traffic
/// with Options::resident_a must hit the cache after the first encode, be
/// bit-identical to the per-call synchronous path, and show up in the
/// service's resident_{hits,misses,heals} counters — for both precisions.
TEST(ServiceResident, RepeatedWeightTrafficHitsCacheBitIdenticalToSync) {
  clear_process_caches();
  ServiceConfig cfg;
  cfg.max_inflight = 2;
  GemmService service(cfg);

  const GemmCase cs{64, 48, 96};
  const int kRounds = 6;
  Options opts;
  opts.threads = 2;
  Options ropts = opts;
  ropts.resident_a = true;

  Matrix<double> wd(cs.m, cs.k);
  wd.fill_random(31);
  Matrix<float> wf(cs.m, cs.k);
  wf.fill_random(32);

  struct RoundD {
    Matrix<double> b, c_sync, c_async;
  };
  struct RoundF {
    Matrix<float> b, c_sync, c_async;
  };
  std::vector<RoundD> rd(kRounds);
  std::vector<RoundF> rf(kRounds);
  for (int r = 0; r < kRounds; ++r) {
    rd[std::size_t(r)].b = Matrix<double>(cs.k, cs.n);
    rd[std::size_t(r)].b.fill_random(std::uint64_t(300 + r));
    rd[std::size_t(r)].c_sync = Matrix<double>(cs.m, cs.n);
    rd[std::size_t(r)].c_sync.fill(0.0);
    rd[std::size_t(r)].c_async = rd[std::size_t(r)].c_sync.clone();
    ft_dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, 1.0,
             wd.data(), wd.ld(), rd[std::size_t(r)].b.data(),
             rd[std::size_t(r)].b.ld(), 0.0, rd[std::size_t(r)].c_sync.data(),
             rd[std::size_t(r)].c_sync.ld(), opts);
    rf[std::size_t(r)].b = Matrix<float>(cs.k, cs.n);
    rf[std::size_t(r)].b.fill_random(std::uint64_t(400 + r));
    rf[std::size_t(r)].c_sync = Matrix<float>(cs.m, cs.n);
    rf[std::size_t(r)].c_sync.fill(0.0f);
    rf[std::size_t(r)].c_async = rf[std::size_t(r)].c_sync.clone();
    ft_sgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, 1.0f,
             wf.data(), wf.ld(), rf[std::size_t(r)].b.data(),
             rf[std::size_t(r)].b.ld(), 0.0f,
             rf[std::size_t(r)].c_sync.data(),
             rf[std::size_t(r)].c_sync.ld(), opts);
  }

  const auto submit_d = [&](int r) {
    return service.submit(make_gemm_request<double>(
        true, Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, 1.0,
        wd.data(), wd.ld(), rd[std::size_t(r)].b.data(),
        rd[std::size_t(r)].b.ld(), 0.0, rd[std::size_t(r)].c_async.data(),
        rd[std::size_t(r)].c_async.ld(), ropts));
  };
  const auto submit_f = [&](int r) {
    return service.submit(make_gemm_request<float>(
        true, Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, 1.0f,
        wf.data(), wf.ld(), rf[std::size_t(r)].b.data(),
        rf[std::size_t(r)].b.ld(), 0.0f, rf[std::size_t(r)].c_async.data(),
        rf[std::size_t(r)].c_async.ld(), ropts));
  };

  // Round 0 warms each weight's entry (serialized so the miss count is
  // deterministic); the remaining rounds fly concurrently and must all hit.
  {
    const GemmResult& res = submit_d(0).wait();
    ASSERT_EQ(res.status, RequestStatus::kDone);
    EXPECT_FALSE(res.report.resident_hit);
  }
  {
    const GemmResult& res = submit_f(0).wait();
    ASSERT_EQ(res.status, RequestStatus::kDone);
    EXPECT_FALSE(res.report.resident_hit);
  }
  std::vector<GemmFuture> futures;
  for (int r = 1; r < kRounds; ++r) {
    futures.push_back(submit_d(r));
    futures.push_back(submit_f(r));
  }
  for (GemmFuture& fut : futures) {
    const GemmResult& res = fut.wait();
    ASSERT_EQ(res.status, RequestStatus::kDone);
    EXPECT_TRUE(res.ok());
    EXPECT_TRUE(res.report.resident_hit) << "warm weight must hit";
    EXPECT_FALSE(res.coalesced) << "resident requests route direct";
  }
  for (int r = 0; r < kRounds; ++r) {
    expect_matrix_near(rd[std::size_t(r)].c_async, rd[std::size_t(r)].c_sync,
                       0.0, "resident f64 round " + std::to_string(r));
    expect_matrix_near(rf[std::size_t(r)].c_async, rf[std::size_t(r)].c_sync,
                       0.0, "resident f32 round " + std::to_string(r));
  }

  const auto stats = service.stats();
  EXPECT_EQ(stats.resident_misses, 2u);  // one encode per weight
  EXPECT_EQ(stats.resident_hits, std::uint64_t(2 * (kRounds - 1)));
  EXPECT_EQ(stats.resident_heals, 0);
}

/// Resident requests must opt out of coalescing without breaking it for
/// everyone else: a mixed queue staged while paused still merges the
/// non-resident members into one batched call, while the resident members
/// ride the direct route with per-request cache accounting intact.
TEST(ServiceResident, CoexistsWithCoalescedNonResidentTraffic) {
  clear_process_caches();
  ServiceConfig cfg;
  cfg.start_paused = true;
  cfg.max_inflight = 1;
  cfg.max_coalesce = 16;
  cfg.shards = 1;  // one dispatcher keeps the resident lane serialized
  GemmService service(cfg);

  const GemmCase cs{48, 40, 64, Trans::kNoTrans, Trans::kTrans, 1.25, -0.5};
  Options opts;
  opts.threads = 1;
  Options ropts = opts;
  ropts.resident_a = true;
  const int kCoal = 6, kResident = 4;

  // Coalescible crowd: distinct problems sharing the fast-path fingerprint.
  std::vector<Problem<double>> crowd;
  std::vector<Matrix<double>> crowd_sync, crowd_async;
  for (int r = 0; r < kCoal; ++r) {
    crowd.emplace_back(cs, std::uint64_t(500 + r));
    crowd_sync.push_back(crowd.back().c.clone());
    crowd_async.push_back(crowd.back().c.clone());
    run_sync<double>(cs, true, crowd.back(), crowd_sync[std::size_t(r)],
                     opts);
  }
  // Resident traffic: one weight, per-request activations.
  Problem<double> wp(cs, 777);
  std::vector<Matrix<double>> res_b, res_sync, res_async;
  for (int r = 0; r < kResident; ++r) {
    res_b.push_back(wp.b.clone());  // same dims, fresh per-request contents
    res_b.back().fill_random(std::uint64_t(600 + r));
    res_sync.emplace_back(wp.c.clone());
    res_async.emplace_back(wp.c.clone());
    ft_dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
             wp.a.data(), wp.a.ld(), res_b[std::size_t(r)].data(),
             res_b[std::size_t(r)].ld(), cs.beta,
             res_sync[std::size_t(r)].data(), res_sync[std::size_t(r)].ld(),
             opts);
  }

  std::vector<GemmFuture> coal_futs, res_futs;
  for (int r = 0; r < kCoal; ++r) {
    const Problem<double>& p = crowd[std::size_t(r)];
    coal_futs.push_back(service.submit(make_gemm_request<double>(
        true, Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
        p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), cs.beta,
        crowd_async[std::size_t(r)].data(), crowd_async[std::size_t(r)].ld(),
        opts)));
  }
  for (int r = 0; r < kResident; ++r) {
    res_futs.push_back(service.submit(make_gemm_request<double>(
        true, Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
        wp.a.data(), wp.a.ld(), res_b[std::size_t(r)].data(),
        res_b[std::size_t(r)].ld(), cs.beta,
        res_async[std::size_t(r)].data(), res_async[std::size_t(r)].ld(),
        ropts)));
  }
  service.resume();

  for (int r = 0; r < kCoal; ++r) {
    const GemmResult& res = coal_futs[std::size_t(r)].wait();
    ASSERT_EQ(res.status, RequestStatus::kDone) << "coalesced " << r;
    EXPECT_TRUE(res.coalesced) << "non-resident member " << r;
    expect_matrix_near(crowd_async[std::size_t(r)],
                       crowd_sync[std::size_t(r)], 0.0,
                       "coalesced member " + std::to_string(r));
  }
  for (int r = 0; r < kResident; ++r) {
    const GemmResult& res = res_futs[std::size_t(r)].wait();
    ASSERT_EQ(res.status, RequestStatus::kDone) << "resident " << r;
    EXPECT_FALSE(res.coalesced) << "resident member " << r;
    expect_matrix_near(res_async[std::size_t(r)], res_sync[std::size_t(r)],
                       0.0, "resident member " + std::to_string(r));
  }

  const auto stats = service.stats();
  EXPECT_GE(stats.coalesced_batches, 1u);
  EXPECT_EQ(stats.coalesced_members, std::uint64_t(kCoal));
  // max_inflight = 1 serializes the resident lane: exactly one encode.
  EXPECT_EQ(stats.resident_misses, 1u);
  EXPECT_EQ(stats.resident_hits, std::uint64_t(kResident - 1));
  EXPECT_EQ(stats.resident_heals, 0);
}

/// 8 concurrent clients hammering one service with mixed entry-point
/// shapes, every result verified — the serving regime end to end, with the
/// same accounting checks test_concurrent.cpp applies to the synchronous
/// layer: leases balance, plans are shared, nothing leaks.
void run_soak(const ServiceConfig& cfg) {
  GemmService service(cfg);

  const int kClients = 8;
  const int kIters = 5;
  std::atomic<int> failures{0};
  const auto note = [&](bool ok) {
    if (!ok) failures.fetch_add(1);
  };

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int id = 0; id < kClients; ++id) {
    clients.emplace_back([&, id] {
      for (int it = 0; it < kIters; ++it) {
        const std::uint64_t seed = std::uint64_t(1000 * id + it);
        const Priority pri = Priority((id + it) % 3);
        Options opts;
        opts.threads = 1 + (id + it) % 2;
        switch ((id + it) % 4) {
          case 0: {  // small FT dgemm — the coalescible regime
            const GemmCase cs{48, 40, 64};
            Problem<double> p(cs, seed);
            const Matrix<double> ref = reference_result(cs, p);
            Matrix<double> c = p.c.clone();
            const GemmResult& res =
                service.submit(make_gemm_request<double>(
                                   true, Layout::kColMajor, cs.ta, cs.tb,
                                   cs.m, cs.n, cs.k, cs.alpha, p.a.data(),
                                   p.a.ld(), p.b.data(), p.b.ld(), cs.beta,
                                   c.data(), c.ld(), opts, pri))
                    .wait();
            note(res.status == RequestStatus::kDone && res.ok());
            note(max_rel_diff(c, ref) <= gemm_tolerance<double>(cs.k));
            break;
          }
          case 1: {  // FT sgemm with transposes
            const GemmCase cs{56, 48, 72, Trans::kTrans, Trans::kNoTrans,
                              1.25, -0.5};
            Problem<float> p(cs, seed);
            const Matrix<float> ref = reference_result(cs, p);
            Matrix<float> c = p.c.clone();
            const GemmResult& res =
                service.submit(make_gemm_request<float>(
                                   true, Layout::kColMajor, cs.ta, cs.tb,
                                   cs.m, cs.n, cs.k, float(cs.alpha),
                                   p.a.data(), p.a.ld(), p.b.data(),
                                   p.b.ld(), float(cs.beta), c.data(),
                                   c.ld(), opts, pri))
                    .wait();
            note(res.status == RequestStatus::kDone && res.ok());
            note(max_rel_diff(c, ref) <= gemm_tolerance<float>(cs.k));
            break;
          }
          case 2: {  // Ori dgemm, multi-panel
            const GemmCase cs{96, 80, 180};
            Problem<double> p(cs, seed);
            const Matrix<double> ref = reference_result(cs, p);
            Matrix<double> c = p.c.clone();
            const GemmResult& res =
                service.submit(make_gemm_request<double>(
                                   false, Layout::kColMajor, cs.ta, cs.tb,
                                   cs.m, cs.n, cs.k, cs.alpha, p.a.data(),
                                   p.a.ld(), p.b.data(), p.b.ld(), cs.beta,
                                   c.data(), c.ld(), opts, pri))
                    .wait();
            note(res.status == RequestStatus::kDone);
            note(max_rel_diff(c, ref) <= gemm_tolerance<double>(cs.k));
            break;
          }
          default: {  // strided-batched FT
            const index_t nn = 32, batch = 4;
            const GemmCase whole{nn, nn * batch, nn};
            Problem<double> p(whole, seed);
            const Matrix<double> ref = reference_result(whole, p);
            Matrix<double> c = p.c.clone();
            const GemmResult& res =
                service
                    .submit(make_strided_batched_request<double>(
                        true, Layout::kColMajor, Trans::kNoTrans,
                        Trans::kNoTrans, nn, nn, nn, 1.0, p.a.data(),
                        p.a.ld(), 0, p.b.data(), p.b.ld(), nn * p.b.ld(),
                        0.0, c.data(), c.ld(), nn * c.ld(), batch, opts,
                        pri))
                    .wait();
            note(res.status == RequestStatus::kDone && res.ok());
            note(res.batch.problems == batch);
            note(max_rel_diff(c, ref) <= gemm_tolerance<double>(nn));
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0)
      << failures.load() << " verification failures across "
      << kClients * kIters << " served requests";

  service.shutdown(true);
  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, std::uint64_t(kClients * kIters));
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_EQ(stats.rejected + stats.cancelled, 0u);
  // max_inflight is per shard; the inline lane never occupies a slot, and
  // its admission check is a heuristic (not a reservation), so with the
  // fast lane on the peak may exceed the slot budget by up to one group
  // per submitting client racing past inline_open simultaneously.
  const std::uint64_t slot_bound =
      std::uint64_t(cfg.max_inflight) * std::uint64_t(service.shards());
  const std::uint64_t peak_bound =
      cfg.inline_fast_lane ? slot_bound + std::uint64_t(kClients) : slot_bound;
  EXPECT_LE(stats.peak_inflight, peak_bound);
  // Per-shard counters must account for every queued execution.
  std::uint64_t shard_submitted = 0, shard_executed = 0;
  for (const auto& ss : stats.shard) {
    shard_submitted += ss.submitted;
    shard_executed += ss.executed;
  }
  EXPECT_EQ(shard_submitted + stats.inline_executed, stats.submitted);
  EXPECT_EQ(shard_executed + stats.inline_executed, stats.completed);

  // Lease/plan accounting one layer down: every workspace lease returned,
  // and workspace growth stayed bounded by the service's concurrency (the
  // in-flight cap, one leased context per member of a running group, plus
  // the clients' own reference computations), not by request volume.
  EXPECT_EQ(process_context_cache<double>().outstanding(), 0);
  EXPECT_EQ(process_context_cache<float>().outstanding(), 0);
}

TEST(ServiceSoak, EightClientsMixedTrafficAllVerified) {
  ServiceConfig cfg;
  cfg.max_inflight = 3;
  run_soak(cfg);
}

TEST(ServiceSoak, EightClientsFourShardsWithStealing) {
  ServiceConfig cfg;
  cfg.shards = 4;
  cfg.max_inflight = 2;
  run_soak(cfg);
}

TEST(ServiceSoak, EightClientsFourShardsQueuedOnly) {
  // Same traffic with the inline fast lane closed: everything rides the
  // rings, dispatchers, and steal path.
  ServiceConfig cfg;
  cfg.shards = 4;
  cfg.max_inflight = 2;
  cfg.inline_fast_lane = false;
  run_soak(cfg);
}

}  // namespace
}  // namespace ftgemm
