// GemmService differential suite: the async front-end must deliver
// *bit-identical* results to the synchronous entry points for every routing
// decision its dispatcher can make — direct dispatch, coalesced-into-
// batched, any priority, either team backend, both precisions — plus the
// lifecycle surface: cancellation, pause/resume, queue-full backpressure,
// shutdown with in-flight requests, and an 8-client soak with lease/plan
// accounting (mirroring test_concurrent.cpp one layer up the stack).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "core/context.hpp"
#include "core/gemm.hpp"
#include "serve/service.hpp"
#include "test_common.hpp"

namespace ftgemm {
namespace {

using serve::GemmFuture;
using serve::GemmResult;
using serve::GemmService;
using serve::Priority;
using serve::RequestStatus;
using serve::ServiceConfig;
using serve::make_gemm_request;
using serve::make_strided_batched_request;
using testing::GemmCase;
using testing::Problem;
using testing::expect_matrix_near;
using testing::gemm_tolerance;
using testing::reference_result;

/// Synchronous oracle: the very entry point the service claims to match.
template <typename T>
FtReport run_sync(const GemmCase& cs, bool ft, const Problem<T>& p,
                  Matrix<T>& c, const Options& opts) {
  if (ft) {
    if constexpr (sizeof(T) == 8) {
      return ft_dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k,
                      cs.alpha, p.a.data(), p.a.ld(), p.b.data(), p.b.ld(),
                      cs.beta, c.data(), c.ld(), opts);
    } else {
      return ft_sgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k,
                      T(cs.alpha), p.a.data(), p.a.ld(), p.b.data(),
                      p.b.ld(), T(cs.beta), c.data(), c.ld(), opts);
    }
  }
  if constexpr (sizeof(T) == 8) {
    dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
          p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), cs.beta, c.data(),
          c.ld(), opts);
  } else {
    sgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, T(cs.alpha),
          p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), T(cs.beta), c.data(),
          c.ld(), opts);
  }
  return {};
}

template <typename T>
void differential_case(GemmService& service, const GemmCase& cs, bool ft,
                       const Options& opts, Priority priority,
                       std::uint64_t seed) {
  Problem<T> p(cs, seed);
  Matrix<T> c_sync = p.c.clone();
  const FtReport sync_rep = run_sync<T>(cs, ft, p, c_sync, opts);

  Matrix<T> c_async = p.c.clone();
  GemmFuture fut = service.submit(make_gemm_request<T>(
      ft, Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, T(cs.alpha),
      p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), T(cs.beta), c_async.data(),
      c_async.ld(), opts, priority));
  const GemmResult& res = fut.wait();

  ASSERT_EQ(res.status, RequestStatus::kDone) << cs;
  EXPECT_TRUE(res.ok()) << cs;
  expect_matrix_near(c_async, c_sync, 0.0, "async vs sync " + cs.name());
  if (ft) {
    EXPECT_EQ(res.report.panels, sync_rep.panels) << cs;
    EXPECT_EQ(res.report.errors_detected, sync_rep.errors_detected) << cs;
    EXPECT_EQ(res.report.uncorrectable_panels, sync_rep.uncorrectable_panels)
        << cs;
  }
}

TEST(ServiceDifferential, BitIdenticalToSyncAcrossShapesBackendsPriorities) {
  GemmService service;
  const GemmCase shapes[] = {
      {48, 40, 64},                                        // fast path
      {96, 80, 260},                                       // multi-panel
      {65, 43, 87, Trans::kTrans, Trans::kNoTrans},        // Ta
      {64, 300, 320, Trans::kNoTrans, Trans::kTrans},      // Tb, wide
      {60, 60, 60, Trans::kNoTrans, Trans::kNoTrans, -1.5, 0.5},
  };
  const RuntimeBackend backends[] = {RuntimeBackend::kOpenMP,
                                     RuntimeBackend::kPool};
  const Priority priorities[] = {Priority::kLow, Priority::kNormal,
                                 Priority::kHigh};
  int i = 0;
  for (const GemmCase& cs : shapes) {
    for (const RuntimeBackend backend : backends) {
      for (const bool ft : {false, true}) {
        Options opts;
        opts.runtime = backend;
        opts.threads = 1 + i % 3;
        const Priority pri = priorities[i % 3];
        differential_case<double>(service, cs, ft, opts, pri,
                                  std::uint64_t(100 + i));
        differential_case<float>(service, cs, ft, opts, pri,
                                 std::uint64_t(200 + i));
        ++i;
      }
    }
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_EQ(stats.cancelled + stats.rejected, 0u);
}

TEST(ServiceDifferential, CoalescedRoutingIsBitIdenticalToSync) {
  // Stage the queue while paused so the dispatcher's first sweep merges the
  // whole set: all requests share one fast-path fingerprint, so the service
  // must route them through a single batched inter-scheduler call — and
  // every member must still equal its own synchronous twin bit-for-bit.
  ServiceConfig cfg;
  cfg.start_paused = true;
  cfg.max_inflight = 1;
  cfg.max_coalesce = 16;
  GemmService service(cfg);

  const GemmCase cs{48, 40, 64, Trans::kNoTrans, Trans::kTrans, 1.25, -0.5};
  Options opts;
  opts.threads = 3;  // fast path pins to 1 thread either route
  const int kRequests = 10;

  std::vector<Problem<double>> problems;
  std::vector<Matrix<double>> c_sync, c_async;
  problems.reserve(kRequests);
  for (int r = 0; r < kRequests; ++r) {
    problems.emplace_back(cs, std::uint64_t(40 + r));
    c_sync.push_back(problems.back().c.clone());
    c_async.push_back(problems.back().c.clone());
  }
  std::vector<FtReport> sync_reps;
  for (int r = 0; r < kRequests; ++r) {
    sync_reps.push_back(
        run_sync<double>(cs, true, problems[std::size_t(r)],
                         c_sync[std::size_t(r)], opts));
  }

  std::vector<GemmFuture> futures;
  for (int r = 0; r < kRequests; ++r) {
    const Problem<double>& p = problems[std::size_t(r)];
    futures.push_back(service.submit(make_gemm_request<double>(
        true, Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
        p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), cs.beta,
        c_async[std::size_t(r)].data(), c_async[std::size_t(r)].ld(), opts)));
  }
  EXPECT_EQ(service.queue_depth(), std::size_t(kRequests));
  service.resume();

  for (int r = 0; r < kRequests; ++r) {
    const GemmResult& res = futures[std::size_t(r)].wait();
    ASSERT_EQ(res.status, RequestStatus::kDone) << "request " << r;
    EXPECT_TRUE(res.coalesced) << "request " << r
                               << " should ride the merged batch";
    EXPECT_TRUE(res.ok()) << "request " << r;
    expect_matrix_near(c_async[std::size_t(r)], c_sync[std::size_t(r)], 0.0,
                       "coalesced member " + std::to_string(r));
    EXPECT_EQ(res.report.panels, sync_reps[std::size_t(r)].panels);
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.coalesced_batches, 1u);
  EXPECT_EQ(stats.coalesced_members, std::uint64_t(kRequests));
  EXPECT_EQ(stats.completed, std::uint64_t(kRequests));
}

TEST(ServiceDifferential, StridedBatchedRequestMatchesSyncBatched) {
  const index_t n = 32, batch = 5;
  const GemmCase whole{n, n * batch, n};
  Problem<double> p(whole, 77);
  Options base;
  base.threads = 2;

  Matrix<double> c_sync = p.c.clone();
  BatchOptions bopts;
  bopts.base = base;
  const BatchReport sync_rep = ft_gemm_strided_batched<double>(
      Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n, n, n, 1.0,
      p.a.data(), p.a.ld(), 0, p.b.data(), p.b.ld(), n * p.b.ld(), 0.0,
      c_sync.data(), c_sync.ld(), n * c_sync.ld(), batch, bopts);

  GemmService service;
  Matrix<double> c_async = p.c.clone();
  GemmFuture fut = service.submit(make_strided_batched_request<double>(
      true, Layout::kColMajor, Trans::kNoTrans, Trans::kNoTrans, n, n, n,
      1.0, p.a.data(), p.a.ld(), 0, p.b.data(), p.b.ld(), n * p.b.ld(), 0.0,
      c_async.data(), c_async.ld(), n * c_async.ld(), batch, base));
  const GemmResult& res = fut.wait();

  ASSERT_EQ(res.status, RequestStatus::kDone);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.batch.problems, batch);
  EXPECT_EQ(res.batch.dirty_problems, sync_rep.dirty_problems);
  expect_matrix_near(c_async, c_sync, 0.0, "strided-batched async vs sync");
  EXPECT_EQ(service.stats().batched_calls, 1u);
}

TEST(ServiceLifecycle, PriorityLanesDrainHighestFirst) {
  ServiceConfig cfg;
  cfg.start_paused = true;
  cfg.max_inflight = 1;
  cfg.coalesce = false;  // keep one completion per request, in lane order
  GemmService service(cfg);

  const GemmCase cs{32, 32, 32};
  std::vector<Problem<double>> problems;
  std::vector<Matrix<double>> cs_out;
  std::mutex order_m;
  std::vector<int> order;
  std::vector<GemmFuture> futures;

  const Priority plan[] = {Priority::kLow,    Priority::kLow,
                           Priority::kNormal, Priority::kNormal,
                           Priority::kHigh,   Priority::kHigh};
  for (int r = 0; r < 6; ++r) {
    problems.emplace_back(cs, std::uint64_t(60 + r));
    cs_out.push_back(problems.back().c.clone());
  }
  for (int r = 0; r < 6; ++r) {
    const Problem<double>& p = problems[std::size_t(r)];
    GemmFuture fut = service.submit(make_gemm_request<double>(
        true, Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
        p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), cs.beta,
        cs_out[std::size_t(r)].data(), cs_out[std::size_t(r)].ld(), {},
        plan[r]));
    fut.then([r, &order_m, &order](const GemmResult&) {
      std::lock_guard<std::mutex> lk(order_m);
      order.push_back(r);
    });
    futures.push_back(std::move(fut));
  }
  service.resume();
  service.shutdown(true);

  ASSERT_EQ(order.size(), 6u);
  // Highs (4, 5) first, lows (0, 1) last; FIFO within a lane.
  EXPECT_EQ(order[0], 4);
  EXPECT_EQ(order[1], 5);
  EXPECT_EQ(order[2], 2);
  EXPECT_EQ(order[3], 3);
  EXPECT_EQ(order[4], 0);
  EXPECT_EQ(order[5], 1);
}

TEST(ServiceLifecycle, CancelQueuedRequestLeavesCUntouched) {
  ServiceConfig cfg;
  cfg.start_paused = true;
  GemmService service(cfg);

  const GemmCase cs{40, 40, 40};
  Problem<double> p0(cs, 1), p1(cs, 2), p2(cs, 3);
  Matrix<double> c0 = p0.c.clone(), c2 = p2.c.clone();
  Matrix<double> c1(cs.m, cs.n);
  c1.fill(42.0);  // sentinel: a cancelled request must never write C
  const Matrix<double> c1_before = c1.clone();

  auto req = [&](const Problem<double>& p, Matrix<double>& c) {
    return make_gemm_request<double>(true, Layout::kColMajor, cs.ta, cs.tb,
                                     cs.m, cs.n, cs.k, cs.alpha, p.a.data(),
                                     p.a.ld(), p.b.data(), p.b.ld(), cs.beta,
                                     c.data(), c.ld());
  };
  GemmFuture f0 = service.submit(req(p0, c0));
  GemmFuture f1 = service.submit(req(p1, c1));
  GemmFuture f2 = service.submit(req(p2, c2));

  EXPECT_TRUE(f1.cancel());
  EXPECT_FALSE(f1.cancel()) << "second cancel must report failure";
  EXPECT_EQ(f1.wait().status, RequestStatus::kCancelled);

  service.resume();
  EXPECT_EQ(f0.wait().status, RequestStatus::kDone);
  EXPECT_EQ(f2.wait().status, RequestStatus::kDone);
  EXPECT_FALSE(f0.cancel()) << "cancel after completion must fail";
  expect_matrix_near(c1, c1_before, 0.0, "cancelled C");

  service.shutdown(true);
  EXPECT_EQ(service.stats().cancelled, 1u);
  EXPECT_EQ(service.stats().completed, 2u);
}

TEST(ServiceLifecycle, ShutdownDrainCompletesInflightAndQueued) {
  ServiceConfig cfg;
  cfg.max_inflight = 2;
  GemmService service(cfg);

  const GemmCase cs{128, 96, 200};
  const int kRequests = 5;
  std::vector<Problem<double>> problems;
  std::vector<Matrix<double>> out;
  std::vector<GemmFuture> futures;
  for (int r = 0; r < kRequests; ++r) {
    problems.emplace_back(cs, std::uint64_t(80 + r));
    out.push_back(problems.back().c.clone());
  }
  for (int r = 0; r < kRequests; ++r) {
    const Problem<double>& p = problems[std::size_t(r)];
    futures.push_back(service.submit(make_gemm_request<double>(
        true, Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
        p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), cs.beta,
        out[std::size_t(r)].data(), out[std::size_t(r)].ld())));
  }
  service.shutdown(true);  // must execute everything already admitted

  for (int r = 0; r < kRequests; ++r) {
    const GemmResult& res = futures[std::size_t(r)].wait();
    ASSERT_EQ(res.status, RequestStatus::kDone) << "request " << r;
    EXPECT_TRUE(res.ok());
    const Matrix<double> ref =
        reference_result(cs, problems[std::size_t(r)]);
    expect_matrix_near(out[std::size_t(r)], ref,
                       gemm_tolerance<double>(cs.k),
                       "drained request " + std::to_string(r));
  }
  EXPECT_EQ(service.inflight(), 0);
  EXPECT_EQ(service.queue_depth(), 0u);

  // Post-shutdown submissions are rejected, not queued.
  Problem<double> p(cs, 99);
  Matrix<double> c = p.c.clone();
  GemmFuture rejected = service.submit(make_gemm_request<double>(
      true, Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
      p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), cs.beta, c.data(),
      c.ld()));
  EXPECT_EQ(rejected.wait().status, RequestStatus::kRejected);
}

TEST(ServiceLifecycle, ShutdownNoDrainCancelsQueued) {
  ServiceConfig cfg;
  cfg.start_paused = true;
  GemmService service(cfg);

  const GemmCase cs{32, 32, 32};
  std::vector<Problem<double>> problems;
  std::vector<Matrix<double>> out;
  std::vector<GemmFuture> futures;
  for (int r = 0; r < 4; ++r) {
    problems.emplace_back(cs, std::uint64_t(10 + r));
    out.emplace_back(cs.m, cs.n);
    out.back().fill(7.0);
  }
  for (int r = 0; r < 4; ++r) {
    const Problem<double>& p = problems[std::size_t(r)];
    futures.push_back(service.submit(make_gemm_request<double>(
        true, Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
        p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), cs.beta,
        out[std::size_t(r)].data(), out[std::size_t(r)].ld())));
  }
  service.shutdown(false);

  Matrix<double> sentinel(cs.m, cs.n);
  sentinel.fill(7.0);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(futures[std::size_t(r)].wait().status,
              RequestStatus::kCancelled)
        << "request " << r;
    expect_matrix_near(out[std::size_t(r)], sentinel, 0.0,
                       "cancelled C " + std::to_string(r));
  }
  EXPECT_EQ(service.stats().cancelled, 4u);
  EXPECT_EQ(service.stats().completed, 0u);
}

TEST(ServiceLifecycle, QueueFullBackpressure) {
  ServiceConfig cfg;
  cfg.start_paused = true;
  cfg.queue_capacity = 2;
  GemmService service(cfg);

  const GemmCase cs{32, 32, 32};
  std::vector<Problem<double>> problems;
  std::vector<Matrix<double>> out;
  for (int r = 0; r < 4; ++r) {
    problems.emplace_back(cs, std::uint64_t(20 + r));
    out.push_back(problems.back().c.clone());
  }
  auto req = [&](int r) {
    const Problem<double>& p = problems[std::size_t(r)];
    return make_gemm_request<double>(true, Layout::kColMajor, cs.ta, cs.tb,
                                     cs.m, cs.n, cs.k, cs.alpha, p.a.data(),
                                     p.a.ld(), p.b.data(), p.b.ld(), cs.beta,
                                     out[std::size_t(r)].data(),
                                     out[std::size_t(r)].ld());
  };

  GemmFuture f0 = service.submit(req(0));
  GemmFuture f1 = service.submit(req(1));
  EXPECT_EQ(service.queue_depth(), 2u);

  // Non-blocking admission sheds load when the queue is full...
  GemmFuture shed = service.try_submit(req(2));
  EXPECT_EQ(shed.wait().status, RequestStatus::kRejected);
  EXPECT_GE(service.stats().rejected, 1u);

  // ...while blocking admission applies backpressure until space opens.
  std::atomic<bool> admitted{false};
  GemmFuture f3;
  std::thread submitter([&] {
    f3 = service.submit(req(3));
    admitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(admitted.load()) << "submit must block on a full queue";

  service.resume();
  submitter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(f0.wait().status, RequestStatus::kDone);
  EXPECT_EQ(f1.wait().status, RequestStatus::kDone);
  EXPECT_EQ(f3.wait().status, RequestStatus::kDone);
}

TEST(ServiceErrors, InvalidRequestsAreRejectedAtTheDoor) {
  GemmService service;
  Matrix<double> a(8, 8), b(8, 8), c(8, 8);
  a.fill_random(1);
  b.fill_random(2);
  c.fill(0.0);

  auto base = [&] {
    return make_gemm_request<double>(true, Layout::kColMajor,
                                     Trans::kNoTrans, Trans::kNoTrans, 8, 8,
                                     8, 1.0, a.data(), 8, b.data(), 8, 0.0,
                                     c.data(), 8);
  };

  {  // negative dimension
    auto r = base();
    r.m = -3;
    EXPECT_EQ(service.submit(r).wait().status, RequestStatus::kRejected);
  }
  {  // undersized lda with a readable A
    auto r = base();
    r.lda = 4;
    EXPECT_EQ(service.submit(r).wait().status, RequestStatus::kRejected);
  }
  {  // null C on a writing call
    auto r = base();
    r.c = nullptr;
    EXPECT_EQ(service.submit(r).wait().status, RequestStatus::kRejected);
  }
  {  // null A with alpha != 0 and k > 0
    auto r = base();
    r.a = nullptr;
    EXPECT_EQ(service.submit(r).wait().status, RequestStatus::kRejected);
  }
  {  // non-positive batch
    auto r = base();
    r.batch = 0;
    EXPECT_EQ(service.submit(r).wait().status, RequestStatus::kRejected);
  }
  EXPECT_EQ(service.stats().rejected, 5u);
  EXPECT_EQ(service.stats().submitted, 0u);

  // A valid request still flows after the rejections.
  EXPECT_EQ(service.submit(base()).wait().status, RequestStatus::kDone);
}

/// The serving pattern the resident-operand cache exists for: one weight
/// matrix per layer, fresh activations per request.  Repeated-A traffic
/// with Options::resident_a must hit the cache after the first encode, be
/// bit-identical to the per-call synchronous path, and show up in the
/// service's resident_{hits,misses,heals} counters — for both precisions.
TEST(ServiceResident, RepeatedWeightTrafficHitsCacheBitIdenticalToSync) {
  clear_process_caches();
  ServiceConfig cfg;
  cfg.max_inflight = 2;
  GemmService service(cfg);

  const GemmCase cs{64, 48, 96};
  const int kRounds = 6;
  Options opts;
  opts.threads = 2;
  Options ropts = opts;
  ropts.resident_a = true;

  Matrix<double> wd(cs.m, cs.k);
  wd.fill_random(31);
  Matrix<float> wf(cs.m, cs.k);
  wf.fill_random(32);

  struct RoundD {
    Matrix<double> b, c_sync, c_async;
  };
  struct RoundF {
    Matrix<float> b, c_sync, c_async;
  };
  std::vector<RoundD> rd(kRounds);
  std::vector<RoundF> rf(kRounds);
  for (int r = 0; r < kRounds; ++r) {
    rd[std::size_t(r)].b = Matrix<double>(cs.k, cs.n);
    rd[std::size_t(r)].b.fill_random(std::uint64_t(300 + r));
    rd[std::size_t(r)].c_sync = Matrix<double>(cs.m, cs.n);
    rd[std::size_t(r)].c_sync.fill(0.0);
    rd[std::size_t(r)].c_async = rd[std::size_t(r)].c_sync.clone();
    ft_dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, 1.0,
             wd.data(), wd.ld(), rd[std::size_t(r)].b.data(),
             rd[std::size_t(r)].b.ld(), 0.0, rd[std::size_t(r)].c_sync.data(),
             rd[std::size_t(r)].c_sync.ld(), opts);
    rf[std::size_t(r)].b = Matrix<float>(cs.k, cs.n);
    rf[std::size_t(r)].b.fill_random(std::uint64_t(400 + r));
    rf[std::size_t(r)].c_sync = Matrix<float>(cs.m, cs.n);
    rf[std::size_t(r)].c_sync.fill(0.0f);
    rf[std::size_t(r)].c_async = rf[std::size_t(r)].c_sync.clone();
    ft_sgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, 1.0f,
             wf.data(), wf.ld(), rf[std::size_t(r)].b.data(),
             rf[std::size_t(r)].b.ld(), 0.0f,
             rf[std::size_t(r)].c_sync.data(),
             rf[std::size_t(r)].c_sync.ld(), opts);
  }

  const auto submit_d = [&](int r) {
    return service.submit(make_gemm_request<double>(
        true, Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, 1.0,
        wd.data(), wd.ld(), rd[std::size_t(r)].b.data(),
        rd[std::size_t(r)].b.ld(), 0.0, rd[std::size_t(r)].c_async.data(),
        rd[std::size_t(r)].c_async.ld(), ropts));
  };
  const auto submit_f = [&](int r) {
    return service.submit(make_gemm_request<float>(
        true, Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, 1.0f,
        wf.data(), wf.ld(), rf[std::size_t(r)].b.data(),
        rf[std::size_t(r)].b.ld(), 0.0f, rf[std::size_t(r)].c_async.data(),
        rf[std::size_t(r)].c_async.ld(), ropts));
  };

  // Round 0 warms each weight's entry (serialized so the miss count is
  // deterministic); the remaining rounds fly concurrently and must all hit.
  {
    const GemmResult& res = submit_d(0).wait();
    ASSERT_EQ(res.status, RequestStatus::kDone);
    EXPECT_FALSE(res.report.resident_hit);
  }
  {
    const GemmResult& res = submit_f(0).wait();
    ASSERT_EQ(res.status, RequestStatus::kDone);
    EXPECT_FALSE(res.report.resident_hit);
  }
  std::vector<GemmFuture> futures;
  for (int r = 1; r < kRounds; ++r) {
    futures.push_back(submit_d(r));
    futures.push_back(submit_f(r));
  }
  for (GemmFuture& fut : futures) {
    const GemmResult& res = fut.wait();
    ASSERT_EQ(res.status, RequestStatus::kDone);
    EXPECT_TRUE(res.ok());
    EXPECT_TRUE(res.report.resident_hit) << "warm weight must hit";
    EXPECT_FALSE(res.coalesced) << "resident requests route direct";
  }
  for (int r = 0; r < kRounds; ++r) {
    expect_matrix_near(rd[std::size_t(r)].c_async, rd[std::size_t(r)].c_sync,
                       0.0, "resident f64 round " + std::to_string(r));
    expect_matrix_near(rf[std::size_t(r)].c_async, rf[std::size_t(r)].c_sync,
                       0.0, "resident f32 round " + std::to_string(r));
  }

  const auto stats = service.stats();
  EXPECT_EQ(stats.resident_misses, 2u);  // one encode per weight
  EXPECT_EQ(stats.resident_hits, std::uint64_t(2 * (kRounds - 1)));
  EXPECT_EQ(stats.resident_heals, 0);
}

/// Resident requests must opt out of coalescing without breaking it for
/// everyone else: a mixed queue staged while paused still merges the
/// non-resident members into one batched call, while the resident members
/// ride the direct route with per-request cache accounting intact.
TEST(ServiceResident, CoexistsWithCoalescedNonResidentTraffic) {
  clear_process_caches();
  ServiceConfig cfg;
  cfg.start_paused = true;
  cfg.max_inflight = 1;
  cfg.max_coalesce = 16;
  GemmService service(cfg);

  const GemmCase cs{48, 40, 64, Trans::kNoTrans, Trans::kTrans, 1.25, -0.5};
  Options opts;
  opts.threads = 1;
  Options ropts = opts;
  ropts.resident_a = true;
  const int kCoal = 6, kResident = 4;

  // Coalescible crowd: distinct problems sharing the fast-path fingerprint.
  std::vector<Problem<double>> crowd;
  std::vector<Matrix<double>> crowd_sync, crowd_async;
  for (int r = 0; r < kCoal; ++r) {
    crowd.emplace_back(cs, std::uint64_t(500 + r));
    crowd_sync.push_back(crowd.back().c.clone());
    crowd_async.push_back(crowd.back().c.clone());
    run_sync<double>(cs, true, crowd.back(), crowd_sync[std::size_t(r)],
                     opts);
  }
  // Resident traffic: one weight, per-request activations.
  Problem<double> wp(cs, 777);
  std::vector<Matrix<double>> res_b, res_sync, res_async;
  for (int r = 0; r < kResident; ++r) {
    res_b.push_back(wp.b.clone());  // same dims, fresh per-request contents
    res_b.back().fill_random(std::uint64_t(600 + r));
    res_sync.emplace_back(wp.c.clone());
    res_async.emplace_back(wp.c.clone());
    ft_dgemm(Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
             wp.a.data(), wp.a.ld(), res_b[std::size_t(r)].data(),
             res_b[std::size_t(r)].ld(), cs.beta,
             res_sync[std::size_t(r)].data(), res_sync[std::size_t(r)].ld(),
             opts);
  }

  std::vector<GemmFuture> coal_futs, res_futs;
  for (int r = 0; r < kCoal; ++r) {
    const Problem<double>& p = crowd[std::size_t(r)];
    coal_futs.push_back(service.submit(make_gemm_request<double>(
        true, Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
        p.a.data(), p.a.ld(), p.b.data(), p.b.ld(), cs.beta,
        crowd_async[std::size_t(r)].data(), crowd_async[std::size_t(r)].ld(),
        opts)));
  }
  for (int r = 0; r < kResident; ++r) {
    res_futs.push_back(service.submit(make_gemm_request<double>(
        true, Layout::kColMajor, cs.ta, cs.tb, cs.m, cs.n, cs.k, cs.alpha,
        wp.a.data(), wp.a.ld(), res_b[std::size_t(r)].data(),
        res_b[std::size_t(r)].ld(), cs.beta,
        res_async[std::size_t(r)].data(), res_async[std::size_t(r)].ld(),
        ropts)));
  }
  service.resume();

  for (int r = 0; r < kCoal; ++r) {
    const GemmResult& res = coal_futs[std::size_t(r)].wait();
    ASSERT_EQ(res.status, RequestStatus::kDone) << "coalesced " << r;
    EXPECT_TRUE(res.coalesced) << "non-resident member " << r;
    expect_matrix_near(crowd_async[std::size_t(r)],
                       crowd_sync[std::size_t(r)], 0.0,
                       "coalesced member " + std::to_string(r));
  }
  for (int r = 0; r < kResident; ++r) {
    const GemmResult& res = res_futs[std::size_t(r)].wait();
    ASSERT_EQ(res.status, RequestStatus::kDone) << "resident " << r;
    EXPECT_FALSE(res.coalesced) << "resident member " << r;
    expect_matrix_near(res_async[std::size_t(r)], res_sync[std::size_t(r)],
                       0.0, "resident member " + std::to_string(r));
  }

  const auto stats = service.stats();
  EXPECT_GE(stats.coalesced_batches, 1u);
  EXPECT_EQ(stats.coalesced_members, std::uint64_t(kCoal));
  // max_inflight = 1 serializes the resident lane: exactly one encode.
  EXPECT_EQ(stats.resident_misses, 1u);
  EXPECT_EQ(stats.resident_hits, std::uint64_t(kResident - 1));
  EXPECT_EQ(stats.resident_heals, 0);
}

/// 8 concurrent clients hammering one service with mixed entry-point
/// shapes, every result verified — the serving regime end to end, with the
/// same accounting checks test_concurrent.cpp applies to the synchronous
/// layer: leases balance, plans are shared, nothing leaks.
TEST(ServiceSoak, EightClientsMixedTrafficAllVerified) {
  ServiceConfig cfg;
  cfg.max_inflight = 3;
  GemmService service(cfg);

  const int kClients = 8;
  const int kIters = 5;
  std::atomic<int> failures{0};
  const auto note = [&](bool ok) {
    if (!ok) failures.fetch_add(1);
  };

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int id = 0; id < kClients; ++id) {
    clients.emplace_back([&, id] {
      for (int it = 0; it < kIters; ++it) {
        const std::uint64_t seed = std::uint64_t(1000 * id + it);
        const Priority pri = Priority((id + it) % 3);
        Options opts;
        opts.threads = 1 + (id + it) % 2;
        switch ((id + it) % 4) {
          case 0: {  // small FT dgemm — the coalescible regime
            const GemmCase cs{48, 40, 64};
            Problem<double> p(cs, seed);
            const Matrix<double> ref = reference_result(cs, p);
            Matrix<double> c = p.c.clone();
            const GemmResult& res =
                service.submit(make_gemm_request<double>(
                                   true, Layout::kColMajor, cs.ta, cs.tb,
                                   cs.m, cs.n, cs.k, cs.alpha, p.a.data(),
                                   p.a.ld(), p.b.data(), p.b.ld(), cs.beta,
                                   c.data(), c.ld(), opts, pri))
                    .wait();
            note(res.status == RequestStatus::kDone && res.ok());
            note(max_rel_diff(c, ref) <= gemm_tolerance<double>(cs.k));
            break;
          }
          case 1: {  // FT sgemm with transposes
            const GemmCase cs{56, 48, 72, Trans::kTrans, Trans::kNoTrans,
                              1.25, -0.5};
            Problem<float> p(cs, seed);
            const Matrix<float> ref = reference_result(cs, p);
            Matrix<float> c = p.c.clone();
            const GemmResult& res =
                service.submit(make_gemm_request<float>(
                                   true, Layout::kColMajor, cs.ta, cs.tb,
                                   cs.m, cs.n, cs.k, float(cs.alpha),
                                   p.a.data(), p.a.ld(), p.b.data(),
                                   p.b.ld(), float(cs.beta), c.data(),
                                   c.ld(), opts, pri))
                    .wait();
            note(res.status == RequestStatus::kDone && res.ok());
            note(max_rel_diff(c, ref) <= gemm_tolerance<float>(cs.k));
            break;
          }
          case 2: {  // Ori dgemm, multi-panel
            const GemmCase cs{96, 80, 180};
            Problem<double> p(cs, seed);
            const Matrix<double> ref = reference_result(cs, p);
            Matrix<double> c = p.c.clone();
            const GemmResult& res =
                service.submit(make_gemm_request<double>(
                                   false, Layout::kColMajor, cs.ta, cs.tb,
                                   cs.m, cs.n, cs.k, cs.alpha, p.a.data(),
                                   p.a.ld(), p.b.data(), p.b.ld(), cs.beta,
                                   c.data(), c.ld(), opts, pri))
                    .wait();
            note(res.status == RequestStatus::kDone);
            note(max_rel_diff(c, ref) <= gemm_tolerance<double>(cs.k));
            break;
          }
          default: {  // strided-batched FT
            const index_t nn = 32, batch = 4;
            const GemmCase whole{nn, nn * batch, nn};
            Problem<double> p(whole, seed);
            const Matrix<double> ref = reference_result(whole, p);
            Matrix<double> c = p.c.clone();
            const GemmResult& res =
                service
                    .submit(make_strided_batched_request<double>(
                        true, Layout::kColMajor, Trans::kNoTrans,
                        Trans::kNoTrans, nn, nn, nn, 1.0, p.a.data(),
                        p.a.ld(), 0, p.b.data(), p.b.ld(), nn * p.b.ld(),
                        0.0, c.data(), c.ld(), nn * c.ld(), batch, opts,
                        pri))
                    .wait();
            note(res.status == RequestStatus::kDone && res.ok());
            note(res.batch.problems == batch);
            note(max_rel_diff(c, ref) <= gemm_tolerance<double>(nn));
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0)
      << failures.load() << " verification failures across "
      << kClients * kIters << " served requests";

  service.shutdown(true);
  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, std::uint64_t(kClients * kIters));
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_EQ(stats.rejected + stats.cancelled, 0u);
  EXPECT_LE(stats.peak_inflight, std::uint64_t(cfg.max_inflight));

  // Lease/plan accounting one layer down: every workspace lease returned,
  // and workspace growth stayed bounded by the service's concurrency (the
  // in-flight cap, one leased context per member of a running group, plus
  // the clients' own reference computations), not by request volume.
  EXPECT_EQ(process_context_cache<double>().outstanding(), 0);
  EXPECT_EQ(process_context_cache<float>().outstanding(), 0);
}

}  // namespace
}  // namespace ftgemm
